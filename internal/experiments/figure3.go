package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/netx"
	"repro/internal/tablefmt"
	"repro/internal/workload"
)

// Figure3Result reproduces Figure 3: null-CGI request response time under
// 24 concurrent clients for five configurations.
type Figure3Result struct {
	// Bars maps configuration name to mean response time, in render order.
	Labels []string
	Means  []time.Duration
	Scale  float64 // measured ns per paper second
}

// Figure 3 configuration labels.
const (
	F3Enterprise  = "Enterprise"
	F3HTTPd       = "HTTPd"
	F3SwalaNoCa   = "Swala no-cache"
	F3SwalaRemote = "Swala remote-cache"
	F3SwalaLocal  = "Swala local-cache"
)

// RunFigure3 measures the five null-CGI configurations.
func RunFigure3(opt Options) (Figure3Result, error) {
	opt = opt.withDefaults()
	res := Figure3Result{Scale: float64(opt.Scale.PerSecond)}
	nClients := opt.pick(8, 24)
	perClient := opt.pick(10, 40)
	const uri = "/cgi-bin/null?work=none"

	// All servers share one in-memory network.
	swalaNo, err := newSwalaCluster(opt, clusterSpec{n: 1, mode: core.NoCache})
	if err != nil {
		return res, err
	}
	defer swalaNo.Close()
	mem := swalaNo.mem

	httpd, err := newBaseline(opt, mem, baseline.HTTPd, "f3-httpd")
	if err != nil {
		return res, err
	}
	defer httpd.Close()
	ent, err := newBaseline(opt, mem, baseline.Enterprise, "f3-ent")
	if err != nil {
		return res, err
	}
	defer ent.Close()

	// Local-cache configuration: a stand-alone caching node, warmed.
	local, err := newSwalaCluster(opt, clusterSpec{n: 1, mode: core.StandAlone})
	if err != nil {
		return res, err
	}
	defer local.Close()

	// Remote-cache configuration: two cooperative nodes; node 1 is warmed
	// and every measured request goes to node 2, forcing a remote fetch each
	// time (node 2 never caches what it fetched, as in the original).
	remote, err := newSwalaCluster(opt, clusterSpec{n: 2, mode: core.Cooperative})
	if err != nil {
		return res, err
	}
	defer remote.Close()

	warm := func(c *swalaCluster, addr string) error {
		resp, err := c.client.Get(addr, uri)
		if err != nil {
			return err
		}
		if resp.StatusCode != 200 {
			return fmt.Errorf("figure3: warmup status %d", resp.StatusCode)
		}
		return nil
	}
	if err := warm(local, local.addrs[0]); err != nil {
		return res, err
	}
	if err := warm(remote, remote.addrs[0]); err != nil {
		return res, err
	}
	// Wait for the insert broadcast to reach node 2's directory.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := remote.servers[1].Directory().Lookup("GET "+uri, time.Now()); ok {
			break
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("figure3: insert broadcast never reached node 2")
		}
		time.Sleep(time.Millisecond)
	}

	// Each configuration dials on its own network fabric.
	run := func(label string, fabric *netx.Mem, addr string) error {
		settle()
		client := httpclient.New(fabric)
		defer client.Close()
		d := &workload.Driver{
			Client:  client,
			Clients: nClients,
			Source:  workload.RepeatSource([]string{addr}, uri, perClient),
		}
		out := d.Run()
		if out.Errors > 0 {
			return fmt.Errorf("figure3: %d errors for %s", out.Errors, label)
		}
		res.Labels = append(res.Labels, label)
		res.Means = append(res.Means, out.Latency.Mean)
		return nil
	}

	if err := run(F3Enterprise, mem, "f3-ent"); err != nil {
		return res, err
	}
	if err := run(F3HTTPd, mem, "f3-httpd"); err != nil {
		return res, err
	}
	if err := run(F3SwalaNoCa, mem, swalaNo.addrs[0]); err != nil {
		return res, err
	}
	if err := run(F3SwalaRemote, remote.mem, remote.addrs[1]); err != nil {
		return res, err
	}
	if err := run(F3SwalaLocal, local.mem, local.addrs[0]); err != nil {
		return res, err
	}
	return res, nil
}

// Mean returns the mean response time for a label (0 when absent).
func (r Figure3Result) Mean(label string) time.Duration {
	for i, l := range r.Labels {
		if l == label {
			return r.Means[i]
		}
	}
	return 0
}

// Render draws the five bars as a table plus ASCII bar chart.
func (r Figure3Result) Render() string {
	var sb strings.Builder
	t := tablefmt.New("Figure 3. Null-CGI response time, 24 concurrent clients (paper seconds).",
		"configuration", "mean response", "bar")
	max := time.Duration(0)
	for _, m := range r.Means {
		if m > max {
			max = m
		}
	}
	for i, l := range r.Labels {
		barLen := 0
		if max > 0 {
			barLen = int(40 * float64(r.Means[i]) / float64(max))
		}
		t.AddRow(l,
			fmt.Sprintf("%.4f", float64(r.Means[i])/r.Scale),
			strings.Repeat("#", barLen))
	}
	sb.WriteString(t.String())
	sb.WriteString("\nPaper shape: Swala no-cache comparable to HTTPd and faster than Enterprise;\nlocal fetch < remote fetch << CGI execution; remote-local gap small.\n")
	return sb.String()
}
