package experiments

import (
	"strings"
	"testing"
)

func testCrashGates(t *testing.T, backend string) {
	t.Helper()
	r, err := RunCrashStore(structuralOpts(), backend)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllCompletedRecovered {
		t.Errorf("recovered %d of %d completed entries (damaged %d)",
			r.Recovery.Recovered, r.Keys, r.Damaged)
	}
	if !r.AllDamagedQuarantined {
		t.Errorf("quarantined %d of %d damaged entries", r.Recovery.Quarantined, r.Damaged)
	}
	if !r.ZeroCorruptServed {
		t.Errorf("%d corrupt bodies served, want 0", r.CorruptBodiesServed)
	}
	if !r.WarmAboveCold {
		t.Errorf("warm hit ratio %.3f not above cold %.3f", r.Warm.HitRatio, r.Cold.HitRatio)
	}
	if !r.RuntimeCorruption.Quarantined {
		t.Error("runtime bit-rot probe was not quarantined")
	}
	if r.Recovery.OrphansSwept != 2 {
		t.Errorf("orphans swept = %d, want 2 (crash debris + planted temp)", r.Recovery.OrphansSwept)
	}
	if out := r.Render(); !strings.Contains(out, "crash recovery") {
		t.Fatalf("render missing title:\n%s", out)
	}
}

func TestCrashRecoveryGates(t *testing.T)         { testCrashGates(t, "files") }
func TestCrashRecoveryGatesLogStore(t *testing.T) { testCrashGates(t, "log") }
