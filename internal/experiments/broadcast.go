package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/httpclient"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/workload"
)

// BroadcastResult is the machine-readable outcome of the directory
// replication comparison (benchsuite -broadcast): batched, corked DirBatch
// broadcast against the pre-batching one-frame-one-flush-per-update wire
// behaviour, measured the way the paper measures replication cost — an
// insert storm (Table 3's load shape) and a pseudo-server directory
// maintenance flood (Table 4's load shape) — plus update-visibility probes.
type BroadcastResult struct {
	// Meta records the runtime environment of the run.
	Meta Meta `json:"meta"`

	// Nodes is the group size for the storm, insertion, and visibility
	// phases (8, matching the paper's largest configuration).
	Nodes int `json:"nodes"`

	// Storm is the headline measurement: an insert storm on all nodes at
	// once, comparing stream pushes (write syscalls on a TCP transport) per
	// directory update with batching on and off.
	Storm struct {
		InsertsPerNode int           `json:"inserts_per_node"`
		Batched        BroadcastWire `json:"batched"`
		Unbatched      BroadcastWire `json:"unbatched"`
		// FlushReduction is unbatched flushes-per-update divided by batched
		// flushes-per-update; the PR's acceptance floor is 5.
		FlushReduction float64 `json:"flush_reduction"`
		MeetsTarget    bool    `json:"meets_5x_target"`
	} `json:"storm"`

	// Insertion reproduces Table 3's unique-key insert load over HTTP at 8
	// nodes, batched vs unbatched: the overhead clients actually observe.
	Insertion struct {
		Requests      int           `json:"requests"`
		BatchedMean   time.Duration `json:"batched_mean_ns"`
		UnbatchedMean time.Duration `json:"unbatched_mean_ns"`
		BatchedP50    time.Duration `json:"batched_p50_ns"`
		UnbatchedP50  time.Duration `json:"unbatched_p50_ns"`
	} `json:"insertion"`

	// Maintenance reproduces Table 4's pseudo-server flood: seven fake
	// peers stream directory inserts at a fixed rate into one serving node
	// while it answers uncacheable requests.
	Maintenance struct {
		UpdatesPerSec int           `json:"updates_per_sec"`
		Requests      int           `json:"requests"`
		BatchedMean   time.Duration `json:"batched_mean_ns"`
		UnbatchedMean time.Duration `json:"unbatched_mean_ns"`
	} `json:"maintenance"`

	// Visibility probes p50 update-visibility latency on an otherwise idle
	// group: time from a local insert on node 1 until the entry is visible
	// in node 8's replica. Batching is adaptive (single updates flush
	// immediately under light load), so batched must be no worse.
	Visibility struct {
		Probes       int           `json:"probes"`
		BatchedP50   time.Duration `json:"batched_p50_ns"`
		UnbatchedP50 time.Duration `json:"unbatched_p50_ns"`
		// NoWorse allows 50% + 1ms of host-scheduling tolerance on probes
		// that measure tens of microseconds.
		NoWorse bool `json:"p50_no_worse"`
	} `json:"visibility"`
}

// BroadcastWire aggregates the replication wire counters of every node in
// one storm run.
type BroadcastWire struct {
	UpdatesSent  uint64 `json:"updates_sent"`
	BatchFrames  uint64 `json:"batch_frames"`
	SingleFrames uint64 `json:"single_frames"`
	Flushes      uint64 `json:"flushes"`
	Dropped      uint64 `json:"dropped"`
	SyncsSent    uint64 `json:"syncs_sent"`
	// MeanBatch is updates per DirBatch frame; FlushesPerUpdate is stream
	// pushes per sent update (1.0 = every update its own write).
	MeanBatch        float64 `json:"mean_batch"`
	FlushesPerUpdate float64 `json:"flushes_per_update"`
	// ConvergeTime is wall time from storm start until every replica holds
	// every entry.
	ConvergeTime time.Duration `json:"converge_time_ns"`
}

func (w *BroadcastWire) fill(agg stats.ReplicationSnapshot, converge time.Duration) {
	w.UpdatesSent = agg.UpdatesSent
	w.BatchFrames = agg.BatchFrames
	w.SingleFrames = agg.SingleFrames
	w.Flushes = agg.Flushes
	w.Dropped = agg.Dropped
	w.SyncsSent = agg.SyncsSent
	w.MeanBatch = agg.MeanBatch()
	w.FlushesPerUpdate = agg.FlushesPerUpdate()
	w.ConvergeTime = converge
}

// aggregateReplication sums the replication counters across a cluster.
func aggregateReplication(c *swalaCluster) stats.ReplicationSnapshot {
	var agg stats.ReplicationSnapshot
	for _, s := range c.servers {
		rs := s.Cluster().ReplicationStats()
		agg.Updates += rs.Updates
		agg.UpdatesSent += rs.UpdatesSent
		agg.BatchFrames += rs.BatchFrames
		agg.SingleFrames += rs.SingleFrames
		agg.Flushes += rs.Flushes
		agg.SyncsSent += rs.SyncsSent
		agg.SyncFull += rs.SyncFull
		agg.SyncDelta += rs.SyncDelta
		agg.SyncUpdates += rs.SyncUpdates
		agg.SyncsApplied += rs.SyncsApplied
		agg.Dropped += rs.Dropped
	}
	return agg
}

// RunBroadcast measures batched vs unbatched directory replication.
func RunBroadcast(o Options) (BroadcastResult, error) {
	o = o.withDefaults()
	var r BroadcastResult
	r.Meta = CollectMeta()
	const nodes = 8
	r.Nodes = nodes

	// --- storm: wire pushes per update under a full-group insert storm ---

	perNode := o.pick(1500, 6000)
	const stormWorkers = 4
	perNode = perNode / stormWorkers * stormWorkers
	r.Storm.InsertsPerNode = perNode

	runStorm := func(disable bool) (BroadcastWire, error) {
		settle()
		c, err := newSwalaCluster(o, clusterSpec{
			n: nodes, mode: core.Cooperative,
			mutate: func(i int, cfg *core.Config) {
				cfg.DisableBroadcastBatch = disable
				// Deep queues so the unbatched storm measures wire cost, not
				// overflow drops.
				cfg.SendQueue = 1 << 16
			},
		})
		if err != nil {
			return BroadcastWire{}, err
		}
		defer c.Close()

		start := time.Now()
		var wg sync.WaitGroup
		for si, s := range c.servers {
			for w := 0; w < stormWorkers; w++ {
				wg.Add(1)
				go func(dir *directory.Directory, si, w int) {
					defer wg.Done()
					now := time.Now()
					for k := 0; k < perNode/stormWorkers; k++ {
						dir.InsertLocal(directory.Entry{
							Key:      fmt.Sprintf("GET /cgi-bin/adl?q=storm-%d-%d-%d", si, w, k),
							Size:     2048,
							ExecTime: time.Millisecond,
						}, now)
					}
				}(s.Directory(), si, w)
			}
		}
		wg.Wait()
		// Wait until every replica holds every entry.
		target := nodes * perNode
		deadline := time.Now().Add(60 * time.Second)
		for {
			converged := true
			for _, s := range c.servers {
				if s.Directory().TotalLen() != target {
					converged = false
					break
				}
			}
			if converged {
				break
			}
			if time.Now().After(deadline) {
				return BroadcastWire{}, fmt.Errorf("broadcast storm (disable=%v): replicas never converged to %d entries", disable, target)
			}
			time.Sleep(time.Millisecond)
		}
		var w BroadcastWire
		w.fill(aggregateReplication(c), time.Since(start))
		return w, nil
	}

	var err error
	if r.Storm.Unbatched, err = runStorm(true); err != nil {
		return r, err
	}
	if r.Storm.Batched, err = runStorm(false); err != nil {
		return r, err
	}
	if r.Storm.Batched.FlushesPerUpdate > 0 {
		r.Storm.FlushReduction = r.Storm.Unbatched.FlushesPerUpdate / r.Storm.Batched.FlushesPerUpdate
	}
	r.Storm.MeetsTarget = r.Storm.FlushReduction >= 5

	// --- insertion: Table 3's unique-key HTTP load, batched vs unbatched ---

	insertRequests := o.pick(60, 180)
	costMillis := o.pick(500, 1000)
	const clientThreads = 4
	r.Insertion.Requests = insertRequests

	runInsertion := func(disable bool) (mean, p50 time.Duration, err error) {
		settle()
		c, err := newSwalaCluster(o, clusterSpec{
			n: nodes, mode: core.Cooperative,
			mutate: func(i int, cfg *core.Config) { cfg.DisableBroadcastBatch = disable },
		})
		if err != nil {
			return 0, 0, err
		}
		defer c.Close()
		client := httpclient.New(c.mem)
		defer client.Close()
		d := &workload.Driver{
			Client:  client,
			Clients: clientThreads,
			Source:  workload.UniqueSource(c.addrs[0], insertRequests/clientThreads, costMillis),
		}
		out := d.Run()
		if out.Errors > 0 {
			return 0, 0, fmt.Errorf("broadcast insertion (disable=%v): %d errors", disable, out.Errors)
		}
		return out.Latency.Mean, out.Latency.P50, nil
	}

	if r.Insertion.UnbatchedMean, r.Insertion.UnbatchedP50, err = runInsertion(true); err != nil {
		return r, err
	}
	if r.Insertion.BatchedMean, r.Insertion.BatchedP50, err = runInsertion(false); err != nil {
		return r, err
	}

	// --- maintenance: Table 4's pseudo-server flood, batched vs unbatched ---

	const pseudoPeers = 7
	updatesPerSec := o.pick(4000, 14000) // aggregate measured rate
	maintRequests := o.pick(60, 240)
	r.Maintenance.UpdatesPerSec = updatesPerSec
	r.Maintenance.Requests = maintRequests

	runMaintenance := func(disable bool) (time.Duration, error) {
		settle()
		c, err := newSwalaCluster(o, clusterSpec{n: 1, mode: core.Cooperative})
		if err != nil {
			return 0, err
		}
		defer c.Close()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		var pseudoNodes []*cluster.Node
		defer func() {
			close(stop)
			wg.Wait()
			for _, pn := range pseudoNodes {
				pn.Close()
			}
		}()
		perPeerRate := float64(updatesPerSec) / pseudoPeers
		for idx := 0; idx < pseudoPeers; idx++ {
			pn := cluster.NewNode(cluster.Config{
				NodeID:          uint32(2000 + idx),
				Network:         c.mem,
				DisableBatching: disable,
				SendQueue:       1 << 15,
			}, cluster.NopHandler{})
			if err := pn.Start(fmt.Sprintf("bcast-pseudo-%d", idx)); err != nil {
				return 0, err
			}
			pseudoNodes = append(pseudoNodes, pn)
			if err := pn.ConnectPeer(1, "swala-clu-1"); err != nil {
				return 0, err
			}
			wg.Add(1)
			go func(pn *cluster.Node, idx int) {
				defer wg.Done()
				// Burst ticker: sub-millisecond per-update intervals are not
				// reliable, so send rate*tick updates every 2ms.
				const tick = 2 * time.Millisecond
				ticker := time.NewTicker(tick)
				defer ticker.Stop()
				carry, seq := 0.0, 0
				for {
					select {
					case <-stop:
						return
					case <-ticker.C:
						carry += perPeerRate * tick.Seconds()
						for ; carry >= 1; carry-- {
							seq++
							pn.Broadcast(&wire.Insert{
								Owner:    pn.ID(),
								Key:      fmt.Sprintf("GET /cgi-bin/adl?q=bcast-%d-%d", idx, seq),
								Size:     2048,
								ExecTime: time.Second,
							})
						}
					}
				}
			}(pn, idx)
		}

		client := httpclient.New(c.mem)
		defer client.Close()
		d := &workload.Driver{
			Client:  client,
			Clients: clientThreads,
			Source:  workload.UncacheableSource(c.addrs[0], maintRequests/clientThreads, costMillis/2),
		}
		out := d.Run()
		if out.Errors > 0 {
			return 0, fmt.Errorf("broadcast maintenance (disable=%v): %d errors", disable, out.Errors)
		}
		return out.Latency.Mean, nil
	}

	if r.Maintenance.UnbatchedMean, err = runMaintenance(true); err != nil {
		return r, err
	}
	if r.Maintenance.BatchedMean, err = runMaintenance(false); err != nil {
		return r, err
	}

	// --- visibility: p50 insert-to-replica latency on an idle group ---

	probes := o.pick(100, 300)
	r.Visibility.Probes = probes

	runVisibility := func(disable bool) (time.Duration, error) {
		settle()
		c, err := newSwalaCluster(o, clusterSpec{
			n: nodes, mode: core.Cooperative,
			mutate: func(i int, cfg *core.Config) { cfg.DisableBroadcastBatch = disable },
		})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		src := c.servers[0].Directory()
		dst := c.servers[nodes-1].Directory()
		lats := make([]time.Duration, 0, probes)
		for i := 0; i < probes; i++ {
			key := fmt.Sprintf("GET /cgi-bin/adl?q=vis-%d", i)
			now := time.Now()
			start := time.Now()
			src.InsertLocal(directory.Entry{Key: key, Size: 64}, now)
			deadline := start.Add(5 * time.Second)
			for {
				if _, ok := dst.Lookup(key, now); ok {
					break
				}
				if time.Now().After(deadline) {
					return 0, fmt.Errorf("broadcast visibility (disable=%v): probe %d never arrived", disable, i)
				}
				runtime.Gosched()
			}
			lats = append(lats, time.Since(start))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2], nil
	}

	if r.Visibility.UnbatchedP50, err = runVisibility(true); err != nil {
		return r, err
	}
	if r.Visibility.BatchedP50, err = runVisibility(false); err != nil {
		return r, err
	}
	tolerance := r.Visibility.UnbatchedP50/2 + time.Millisecond
	r.Visibility.NoWorse = r.Visibility.BatchedP50 <= r.Visibility.UnbatchedP50+tolerance

	return r, nil
}

// Render formats the result as a human-readable report.
func (r BroadcastResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "directory replication, %d nodes (go %s, GOMAXPROCS %d):\n",
		r.Nodes, r.Meta.GoVersion, r.Meta.GOMAXPROCS)
	fmt.Fprintf(&b, "  insert storm (%d inserts/node):\n", r.Storm.InsertsPerNode)
	fmt.Fprintf(&b, "    unbatched: %d updates in %d flushes (%.3f flushes/update), converged in %v\n",
		r.Storm.Unbatched.UpdatesSent, r.Storm.Unbatched.Flushes,
		r.Storm.Unbatched.FlushesPerUpdate, r.Storm.Unbatched.ConvergeTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "    batched:   %d updates in %d flushes (%.3f flushes/update, mean batch %.1f), converged in %v\n",
		r.Storm.Batched.UpdatesSent, r.Storm.Batched.Flushes,
		r.Storm.Batched.FlushesPerUpdate, r.Storm.Batched.MeanBatch,
		r.Storm.Batched.ConvergeTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "    flush reduction: %.1fx (target >= 5x: %v)\n",
		r.Storm.FlushReduction, r.Storm.MeetsTarget)
	fmt.Fprintf(&b, "  insertion latency, Table 3 load (%d unique requests):\n", r.Insertion.Requests)
	fmt.Fprintf(&b, "    unbatched: mean %v  p50 %v\n",
		r.Insertion.UnbatchedMean.Round(time.Microsecond), r.Insertion.UnbatchedP50.Round(time.Microsecond))
	fmt.Fprintf(&b, "    batched:   mean %v  p50 %v\n",
		r.Insertion.BatchedMean.Round(time.Microsecond), r.Insertion.BatchedP50.Round(time.Microsecond))
	fmt.Fprintf(&b, "  maintenance latency, Table 4 load (%d updates/s from 7 pseudo-servers):\n",
		r.Maintenance.UpdatesPerSec)
	fmt.Fprintf(&b, "    unbatched: mean %v   batched: mean %v\n",
		r.Maintenance.UnbatchedMean.Round(time.Microsecond), r.Maintenance.BatchedMean.Round(time.Microsecond))
	fmt.Fprintf(&b, "  update visibility (%d probes, node 1 -> node %d):\n", r.Visibility.Probes, r.Nodes)
	fmt.Fprintf(&b, "    unbatched p50 %v   batched p50 %v   no worse: %v\n",
		r.Visibility.UnbatchedP50.Round(time.Microsecond), r.Visibility.BatchedP50.Round(time.Microsecond),
		r.Visibility.NoWorse)
	return b.String()
}
