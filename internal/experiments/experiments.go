// Package experiments contains one driver per table and figure of the
// paper's evaluation (Tables 1–6, Figures 3 and 4). Each driver builds the
// servers and workload it needs, runs the measurement, and returns a
// structured result that can render itself as a text table or ASCII chart.
// The drivers are shared by cmd/benchsuite, the repository's benchmark
// suite, and EXPERIMENTS.md generation.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/cacheability"
	"repro/internal/cgi"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/netx"
	"repro/internal/replacement"
	"repro/internal/timescale"
)

// Options tunes an experiment run.
type Options struct {
	// Scale maps paper seconds to measured time. Zero value = 1 s -> 10 ms.
	Scale timescale.Scale
	// Quick shrinks request counts and sweep points so the full suite runs
	// in tens of seconds (used by `go test -bench` and CI); the default
	// (false) uses counts close to the paper's.
	Quick bool
	// Seed drives all workload randomness.
	Seed int64
}

// Defaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Scale.PerSecond == 0 {
		o.Scale = timescale.Default()
	}
	if o.Seed == 0 {
		o.Seed = 1998
	}
	return o
}

// pick returns quick when o.Quick, else full.
func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// settle quiesces the runtime between measured configurations: a completed
// GC cycle prevents garbage from an earlier configuration's run from being
// collected during (and billed to) the next one.
func settle() {
	runtime.GC()
}

// --- cluster construction helpers ---

// swalaCluster is a set of connected Swala nodes over an in-memory network.
type swalaCluster struct {
	mem     *netx.Mem
	servers []*core.Server
	client  *httpclient.Client
	addrs   []string
}

// clusterSpec configures swala cluster construction.
type clusterSpec struct {
	n        int
	mode     core.Mode
	capacity int
	policy   string // replacement kind; "" = LRU
	ttl      time.Duration
	cores    int
	// mem, when non-nil, reuses an existing in-memory network instead of
	// creating a fresh one (so callers can wrap it, e.g. with netx.Faulty).
	mem *netx.Mem
	// netFor, when non-nil, supplies each node's transport (the fault
	// experiments hand every node a fault-injection endpoint view).
	netFor func(i int) netx.Network
	// mutate, when non-nil, adjusts each node's config just before the
	// server is built (replication knobs, queue depths, ...).
	mutate func(i int, cfg *core.Config)
}

// newSwalaCluster builds n Swala nodes, registers the standard experiment
// content (WebStone files, nullcgi, the ADL synthetic program, and an
// uncacheable private program), and connects the mesh.
func newSwalaCluster(opt Options, spec clusterSpec) (*swalaCluster, error) {
	mem := spec.mem
	if mem == nil {
		mem = netx.NewMem()
	}
	c := &swalaCluster{mem: mem, client: httpclient.New(mem)}

	ttl := spec.ttl
	if ttl == 0 {
		ttl = time.Hour
	}
	pol := cacheability.NewPolicy()
	pol.Add("/cgi-bin/private*", cacheability.NoCache, 0)
	pol.Add("/cgi-bin/*", cacheability.Cache, ttl)
	pol.DefaultTTL = ttl

	costs := core.ScaledCosts(opt.Scale)
	for i := 0; i < spec.n; i++ {
		cfg := core.Config{
			NodeID:        uint32(i + 1),
			Mode:          spec.mode,
			Cores:         spec.cores,
			Costs:         costs,
			CacheCapacity: spec.capacity,
			Cacheability:  pol,
			Network:       mem,
			FetchTimeout:  10 * time.Second,
			PurgeInterval: time.Hour, // experiments purge explicitly if at all
		}
		if spec.policy != "" {
			cfg.Policy = replacement.Kind(spec.policy)
		}
		if spec.netFor != nil {
			cfg.Network = spec.netFor(i)
		}
		if spec.mutate != nil {
			spec.mutate(i, &cfg)
		}
		s := core.New(cfg)
		registerExperimentContent(s.Files(), s.CGI(), opt.Scale)
		httpAddr := fmt.Sprintf("swala-http-%d", i+1)
		cluAddr := fmt.Sprintf("swala-clu-%d", i+1)
		if err := s.Start(httpAddr, cluAddr); err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, s)
		c.addrs = append(c.addrs, httpAddr)
	}
	if spec.mode == core.Cooperative {
		for i := range c.servers {
			for j := range c.servers {
				if i == j {
					continue
				}
				if err := c.servers[i].ConnectPeer(uint32(j+1), fmt.Sprintf("swala-clu-%d", j+1)); err != nil {
					c.Close()
					return nil, err
				}
			}
		}
	}
	return c, nil
}

// Close shuts down all servers and the client.
func (c *swalaCluster) Close() {
	if c.client != nil {
		c.client.Close()
	}
	for _, s := range c.servers {
		s.Close()
	}
}

// registerExperimentContent installs the standard static files and CGI
// programs used across the experiments.
func registerExperimentContent(files *content.FileSet, engine *cgi.Engine, scale timescale.Scale) {
	content.WebStoneMix(files)
	// nullcgi: WebStone's do-nothing program; cost is pure spawn overhead.
	engine.Register("/cgi-bin/null", &cgi.Synthetic{OutputSize: 80})
	// The ADL stand-in: service time comes from the cost=<paper-ms> query
	// parameter, so one program serves heterogeneous trace replays.
	engine.Register("/cgi-bin/adl", &cgi.Synthetic{
		OutputSize:   2048,
		PerQueryTime: scale.D(0.001),
	})
	// An uncacheable program for the Table 4 directory-maintenance load.
	engine.Register("/cgi-bin/private", &cgi.Synthetic{
		OutputSize:   512,
		PerQueryTime: scale.D(0.001),
	})
}

// newBaseline builds a baseline server with the standard experiment content,
// with costs scaled like Swala's.
func newBaseline(opt Options, mem *netx.Mem, kind baseline.Kind, addr string) (*baseline.Server, error) {
	costs := scaledBaselineCosts(opt.Scale, kind)
	s, err := baseline.New(baseline.Config{Kind: kind, Costs: &costs, Network: mem})
	if err != nil {
		return nil, err
	}
	registerExperimentContent(s.Files(), s.CGI(), opt.Scale)
	if err := s.Start(addr); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// scaledBaselineCosts derives baseline cost models for an arbitrary scale
// from the same paper-time constants as baseline.DefaultCosts.
func scaledBaselineCosts(s timescale.Scale, kind baseline.Kind) baseline.Costs {
	switch kind {
	case baseline.HTTPd:
		return baseline.Costs{
			ProcSpawn: s.D(0.025),
			FileBase:  s.D(0.006),
			PerByte:   s.D(0.0000025),
			CGISpawn:  s.D(0.022),
		}
	case baseline.Enterprise:
		return baseline.Costs{
			FileBase:          s.D(0.0022),
			PerByte:           s.D(0.0000008),
			CGISpawn:          s.D(0.060),
			ContentionPenalty: s.D(0.001),
		}
	default:
		return baseline.Costs{}
	}
}
