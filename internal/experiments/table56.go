package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/workload"
)

// HitRatioResult reproduces Tables 5 and 6: cache hits under stand-alone and
// cooperative caching compared with the theoretical upper bound, for a given
// per-node cache size.
type HitRatioResult struct {
	// CacheSize is the per-node capacity in entries (2000 for Table 5, 20
	// for Table 6).
	CacheSize int
	// TotalRequests and UniqueRequests describe the workload (paper: 1600
	// and 1122).
	TotalRequests  int
	UniqueRequests int
	// UpperBound is the maximum possible hits (total - unique).
	UpperBound int

	Nodes      []int
	StandAlone []int64
	Coop       []int64
}

// RunHitRatio measures Tables 5/6 for the given per-node cache size.
func RunHitRatio(opt Options, cacheSize int) (HitRatioResult, error) {
	opt = opt.withDefaults()

	total := opt.pick(800, 1600)
	unique := opt.pick(561, 1122)
	reqs := workload.HitWorkload(workload.HitWorkloadConfig{
		Total:  total,
		Unique: unique,
		// Short executions keep the run fast and the false-miss window
		// narrow; hit counts do not otherwise depend on service time.
		CostMillis: 15,
		// Repeats cluster near their first occurrence, matching the log's
		// temporal locality; this is what lets even a 20-entry cache catch a
		// meaningful share of repeats (Table 6's single-node 28.7%).
		LocalityWindow: 90,
		Seed:           opt.Seed,
	})

	res := HitRatioResult{
		CacheSize:      cacheSize,
		TotalRequests:  len(reqs),
		UniqueRequests: workload.CountUnique(reqs),
		UpperBound:     workload.UpperBoundHits(reqs),
	}
	nodes := []int{1, 2, 4, 6, 8}
	if opt.Quick {
		nodes = []int{1, 2, 4, 8}
	}
	res.Nodes = nodes

	const clientThreads = 16

	run := func(n int, mode core.Mode) (int64, error) {
		cluster, err := newSwalaCluster(opt, clusterSpec{n: n, mode: mode, capacity: cacheSize})
		if err != nil {
			return 0, err
		}
		defer cluster.Close()
		client := httpclient.New(cluster.mem)
		defer client.Close()
		d := &workload.Driver{
			Client:  client,
			Clients: clientThreads,
			Source:  workload.SliceSource(cluster.addrs, reqs, clientThreads),
		}
		out := d.Run()
		if out.Errors > 0 {
			return 0, fmt.Errorf("hit-ratio: %d errors at n=%d mode=%v", out.Errors, n, mode)
		}
		var totalSnap stats.HitSnapshot
		for _, s := range cluster.servers {
			totalSnap = totalSnap.Add(s.Counters())
		}
		return totalSnap.Hits(), nil
	}

	for _, n := range nodes {
		sa, err := run(n, core.StandAlone)
		if err != nil {
			return res, err
		}
		coop := sa
		if n == 1 {
			// With one node cooperative and stand-alone caching coincide
			// (the paper's tables report N/A for stand-alone at one node).
			res.StandAlone = append(res.StandAlone, -1)
			coop, err = run(n, core.Cooperative)
			if err != nil {
				return res, err
			}
		} else {
			res.StandAlone = append(res.StandAlone, sa)
			coop, err = run(n, core.Cooperative)
			if err != nil {
				return res, err
			}
		}
		res.Coop = append(res.Coop, coop)
	}
	return res, nil
}

// PercentOfBound converts a hit count to a percentage of the upper bound.
func (r HitRatioResult) PercentOfBound(hits int64) float64 {
	if r.UpperBound == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(r.UpperBound)
}

// CoopPercentAt returns cooperative hits as % of bound at index i.
func (r HitRatioResult) CoopPercentAt(i int) float64 {
	return r.PercentOfBound(r.Coop[i])
}

// StandAlonePercentAt returns stand-alone hits as % of bound at index i
// (NaN-free: -1 rows return 0).
func (r HitRatioResult) StandAlonePercentAt(i int) float64 {
	if r.StandAlone[i] < 0 {
		return 0
	}
	return r.PercentOfBound(r.StandAlone[i])
}

// Render formats the result like the paper's Tables 5/6.
func (r HitRatioResult) Render() string {
	var sb strings.Builder
	title := fmt.Sprintf("Table. Cache hit ratios, stand-alone and cooperative caching, cache size %d.", r.CacheSize)
	fmt.Fprintf(&sb, "Workload: %d requests, %d unique; upper bound on hits = %d.\n",
		r.TotalRequests, r.UniqueRequests, r.UpperBound)
	t := tablefmt.New(title,
		"# nodes", "Stand. hits", "Coop. hits", "Stand. %", "Coop. %")
	for i, n := range r.Nodes {
		sa := "N/A"
		saPct := "N/A"
		if r.StandAlone[i] >= 0 {
			sa = fmt.Sprintf("%d", r.StandAlone[i])
			saPct = fmt.Sprintf("%.1f%%", r.StandAlonePercentAt(i))
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			sa,
			fmt.Sprintf("%d", r.Coop[i]),
			saPct,
			fmt.Sprintf("%.1f%%", r.CoopPercentAt(i)),
		)
	}
	sb.WriteString(t.String())
	if r.CacheSize >= 1000 {
		sb.WriteString("\nPaper shape (Table 5, size 2000): cooperative stays >= 97% of the bound at\nevery node count; stand-alone falls off as nodes are added.\n")
	} else {
		sb.WriteString("\nPaper shape (Table 6, size 20): cooperative hit ratio grows with nodes\n(~29% -> ~74% of bound); stand-alone stays below 40%.\n")
	}
	return sb.String()
}
