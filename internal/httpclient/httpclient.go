// Package httpclient is a from-scratch HTTP/1.1 client with keep-alive
// connection pooling, used by the WebStone-style load generators to drive
// the Swala server and the baseline comparators. Like the server side it is
// built directly on the httpmsg message layer over raw connections.
package httpclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/httpmsg"
	"repro/internal/netx"
)

// ErrClosed is returned after Close.
var ErrClosed = errors.New("httpclient: client closed")

// Client issues HTTP requests with per-address connection reuse. It is safe
// for concurrent use.
type Client struct {
	network netx.Network
	// MaxIdlePerHost bounds pooled connections per address (default 32).
	maxIdle int
	// Timeout bounds each round trip (dial + write + read). 0 = none.
	timeout time.Duration

	mu     sync.Mutex
	idle   map[string][]*pooledConn
	closed bool
}

type pooledConn struct {
	conn   net.Conn
	reader *bufio.Reader
	writer *bufio.Writer
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout bounds every round trip.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithMaxIdlePerHost sets the pool bound.
func WithMaxIdlePerHost(n int) Option { return func(c *Client) { c.maxIdle = n } }

// New creates a client on the given network (nil means real TCP).
func New(network netx.Network, opts ...Option) *Client {
	if network == nil {
		network = netx.TCP{}
	}
	c := &Client{network: network, maxIdle: 32, idle: make(map[string][]*pooledConn)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get issues a GET for uri against addr and returns the response.
func (c *Client) Get(addr, uri string) (*httpmsg.Response, error) {
	req := httpmsg.NewRequest("GET", uri)
	return c.Do(addr, req)
}

// Do sends req to addr, reusing a pooled connection when possible, and
// returns the parsed response. A request that fails on a reused connection
// is retried once on a fresh connection (the peer may have closed the idle
// connection between requests).
func (c *Client) Do(addr string, req *httpmsg.Request) (*httpmsg.Response, error) {
	pc, reused, err := c.getConn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(pc, req)
	if err != nil && reused {
		pc.conn.Close()
		pc, _, err = c.dialConn(addr)
		if err != nil {
			return nil, err
		}
		resp, err = c.roundTrip(pc, req)
	}
	if err != nil {
		pc.conn.Close()
		return nil, err
	}

	// Honor the server's connection semantics before pooling.
	if connectionReusable(req, resp) {
		c.putConn(addr, pc)
	} else {
		pc.conn.Close()
	}
	return resp, nil
}

func connectionReusable(req *httpmsg.Request, resp *httpmsg.Response) bool {
	if resp.Header.Get("Connection") == "close" {
		return false
	}
	return req.WantsKeepAlive()
}

func (c *Client) roundTrip(pc *pooledConn, req *httpmsg.Request) (*httpmsg.Response, error) {
	if c.timeout > 0 {
		pc.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := httpmsg.WriteRequest(pc.writer, req); err != nil {
		return nil, fmt.Errorf("httpclient: write: %w", err)
	}
	resp, err := httpmsg.ReadResponse(pc.reader)
	if err != nil {
		return nil, fmt.Errorf("httpclient: read: %w", err)
	}
	return resp, nil
}

func (c *Client) getConn(addr string) (pc *pooledConn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if conns := c.idle[addr]; len(conns) > 0 {
		pc = conns[len(conns)-1]
		c.idle[addr] = conns[:len(conns)-1]
		c.mu.Unlock()
		return pc, true, nil
	}
	c.mu.Unlock()
	pc, _, err = c.dialConn(addr)
	return pc, false, err
}

func (c *Client) dialConn(addr string) (*pooledConn, bool, error) {
	conn, err := c.network.Dial(addr)
	if err != nil {
		return nil, false, fmt.Errorf("httpclient: dial %s: %w", addr, err)
	}
	return &pooledConn{
		conn:   conn,
		reader: bufio.NewReaderSize(conn, 8<<10),
		writer: bufio.NewWriterSize(conn, 8<<10),
	}, false, nil
}

func (c *Client) putConn(addr string, pc *pooledConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle[addr]) >= c.maxIdle {
		pc.conn.Close()
		return
	}
	if c.timeout > 0 {
		pc.conn.SetDeadline(time.Time{})
	}
	c.idle[addr] = append(c.idle[addr], pc)
}

// IdleConns reports pooled connections for addr (for tests).
func (c *Client) IdleConns(addr string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.idle[addr])
}

// Close closes all pooled connections; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conns := range c.idle {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}
	c.idle = make(map[string][]*pooledConn)
	return nil
}
