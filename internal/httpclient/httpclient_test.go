package httpclient

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/httpmsg"
	"repro/internal/httpserver"
	"repro/internal/netx"
)

func startServer(t *testing.T, mem *netx.Mem, name string, h httpserver.Handler) {
	t.Helper()
	l, err := mem.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	s := httpserver.New(h, httpserver.Config{RequestThreads: 4})
	s.Serve(l)
	t.Cleanup(func() { s.Close() })
}

func echo(ctx context.Context, req *httpmsg.Request) *httpmsg.Response {
	resp := httpmsg.NewResponse(200)
	resp.Body = []byte("echo:" + req.URI)
	return resp
}

func TestGet(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem)
	defer c.Close()

	resp, err := c.Get("srv", "/hello?x=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != "echo:/hello?x=1" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestConnectionReuse(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem)
	defer c.Close()

	for i := 0; i < 5; i++ {
		if _, err := c.Get("srv", fmt.Sprintf("/r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.IdleConns("srv"); got != 1 {
		t.Fatalf("IdleConns = %d, want 1 (connection must be reused)", got)
	}
}

func TestNoReuseOnConnectionClose(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem)
	defer c.Close()

	req := httpmsg.NewRequest("GET", "/x")
	req.Header.Set("Connection", "close")
	if _, err := c.Do("srv", req); err != nil {
		t.Fatal(err)
	}
	if got := c.IdleConns("srv"); got != 0 {
		t.Fatalf("IdleConns = %d, want 0 after Connection: close", got)
	}
}

func TestRetryOnStaleConnection(t *testing.T) {
	mem := netx.NewMem()
	// Server closes every connection after one request without announcing it
	// in a way the pool can see at put time... simulate by limiting requests
	// per conn but not sending Connection: close is not possible with our
	// server (it always announces). Instead: restart the server between
	// requests so the pooled connection goes stale.
	l, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s := httpserver.New(httpserver.HandlerFunc(echo), httpserver.Config{RequestThreads: 2})
	s.Serve(l)

	c := New(mem)
	defer c.Close()
	if _, err := c.Get("srv", "/first"); err != nil {
		t.Fatal(err)
	}
	if c.IdleConns("srv") != 1 {
		t.Fatal("expected a pooled connection")
	}

	// Kill the server (closing the pooled conn server-side) and restart.
	s.Close()
	l2, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	s2 := httpserver.New(httpserver.HandlerFunc(echo), httpserver.Config{RequestThreads: 2})
	s2.Serve(l2)
	defer s2.Close()

	resp, err := c.Get("srv", "/second")
	if err != nil {
		t.Fatalf("retry on stale connection failed: %v", err)
	}
	if string(resp.Body) != "echo:/second" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestDialError(t *testing.T) {
	c := New(netx.NewMem())
	defer c.Close()
	if _, err := c.Get("nowhere", "/"); err == nil {
		t.Fatal("Get to unknown host succeeded")
	}
}

func TestClientClosed(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem)
	c.Close()
	if _, err := c.Get("srv", "/"); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMaxIdlePerHost(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem, WithMaxIdlePerHost(2))
	defer c.Close()

	// Issue concurrent requests to force multiple connections.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Get("srv", "/x"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := c.IdleConns("srv"); got > 2 {
		t.Fatalf("IdleConns = %d, want <= 2", got)
	}
}

func TestConcurrentRequests(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(echo))
	c := New(mem)
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			uri := fmt.Sprintf("/c%d", i)
			resp, err := c.Get("srv", uri)
			if err != nil {
				t.Errorf("%s: %v", uri, err)
				return
			}
			if string(resp.Body) != "echo:"+uri {
				t.Errorf("%s: body %q", uri, resp.Body)
			}
		}(i)
	}
	wg.Wait()
}

func TestPostBody(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "srv", httpserver.HandlerFunc(func(ctx context.Context, req *httpmsg.Request) *httpmsg.Response {
		resp := httpmsg.NewResponse(200)
		resp.Body = append([]byte("got:"), req.Body...)
		return resp
	}))
	c := New(mem)
	defer c.Close()

	req := httpmsg.NewRequest("POST", "/submit")
	req.Body = []byte("payload")
	resp, err := c.Do("srv", req)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "got:payload" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestTimeout(t *testing.T) {
	mem := netx.NewMem()
	startServer(t, mem, "slow", httpserver.HandlerFunc(func(ctx context.Context, req *httpmsg.Request) *httpmsg.Response {
		time.Sleep(200 * time.Millisecond)
		return httpmsg.NewResponse(200)
	}))
	c := New(mem, WithTimeout(20*time.Millisecond))
	defer c.Close()
	if _, err := c.Get("slow", "/"); err == nil {
		t.Fatal("want timeout error")
	}
}

func TestOverTCP(t *testing.T) {
	tcp := netx.TCP{}
	l, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	s := httpserver.New(httpserver.HandlerFunc(echo), httpserver.Config{RequestThreads: 2})
	s.Serve(l)
	defer s.Close()

	c := New(nil) // nil network = real TCP
	defer c.Close()
	resp, err := c.Get(s.Addr(), "/tcp")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "echo:/tcp" {
		t.Fatalf("body = %q", resp.Body)
	}
}
