// Package store holds cached CGI result bodies. Following the paper's
// design, the production backend keeps each cached result in its own
// operating-system file and relies on the OS file cache to make recently
// used entries cheap to serve; only meta-data lives in memory. An in-memory
// backend with the same interface serves tests and experiments that should
// not touch disk.
//
// Beyond the paper, the disk backend is durable and self-healing: entry
// files are self-describing (format.go) and checksum-verified on every
// read, OpenDisk rebuilds the key→file map from the files after a restart
// or crash (quarantining anything corrupt), and write failures flip the
// store into a degraded read-only mode instead of failing requests.
package store

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a key has no stored body.
var ErrNotFound = errors.New("store: entry not found")

// ErrClosed is returned by operations on a closed disk store.
var ErrClosed = errors.New("store: disk store closed")

// ErrDegraded is returned by Put while the disk store is in degraded
// read-only mode after a write failure; reads keep working and a periodic
// re-probe write decides when to leave the mode.
var ErrDegraded = errors.New("store: degraded (writes suspended)")

// Store persists cache entry bodies keyed by the canonical request key.
// Implementations are safe for concurrent use.
type Store interface {
	// Put stores body under key, overwriting any existing body.
	Put(key string, contentType string, body []byte) error
	// Get returns the body and content type for key.
	Get(key string) (contentType string, body []byte, err error)
	// Delete removes key's body. Deleting an absent key is not an error.
	Delete(key string) error
	// Len reports how many bodies are stored.
	Len() int
	// Close releases resources. The disk store keeps its files so a later
	// OpenDisk can recover them; use Destroy to delete them.
	Close() error
}

// MetaPutter is implemented by stores that persist cache meta-data (CGI
// execution time, TTL deadline) alongside the body, so a recovery scan can
// rebuild directory entries, not just bodies.
type MetaPutter interface {
	PutEntry(key, contentType string, body []byte, execTime time.Duration, expires time.Time) error
}

// PutWithMeta stores body with its cache meta-data when the store supports
// it, falling back to a plain Put.
func PutWithMeta(s Store, key, contentType string, body []byte, execTime time.Duration, expires time.Time) error {
	if mp, ok := s.(MetaPutter); ok {
		return mp.PutEntry(key, contentType, body, execTime, expires)
	}
	return s.Put(key, contentType, body)
}

// --- storage health ---

// StorageStatus is a point-in-time view of a persistent store's health,
// surfaced on /swala-status, in the wire StatsReply, and by swalactl stats.
type StorageStatus struct {
	// Persistent is true for disk-backed stores.
	Persistent bool
	// Degraded is true while writes are suspended after a storage fault;
	// DegradedSince is when the mode was entered and LastError the fault
	// that caused it (kept, for observability, after recovery too).
	Degraded      bool
	DegradedSince time.Time
	LastError     string
	// PutFailures counts Puts that did not store an entry (the request was
	// still served, just not cached).
	PutFailures uint64
	// Quarantined counts corrupt entry files moved aside (at recovery and
	// at read time) instead of served.
	Quarantined uint64
	// Recovered is how many entries the startup scan rebuilt; OrphansSwept
	// how many abandoned temp files it deleted.
	Recovered    uint64
	OrphansSwept uint64
}

// statusReporter is the optional interface stores with health state expose.
type statusReporter interface {
	StorageStatus() StorageStatus
}

// StatusOf reports storage health for s, unwrapping the memory tier; ok is
// false for stores without health state (the in-memory backend).
func StatusOf(s Store) (StorageStatus, bool) {
	for {
		switch v := s.(type) {
		case *Tiered:
			s = v.backing
		case statusReporter:
			return v.StorageStatus(), true
		default:
			return StorageStatus{}, false
		}
	}
}

// --- in-memory store ---

type memEntry struct {
	contentType string
	body        []byte
}

// Memory is a map-backed Store for tests and simulation runs.
type Memory struct {
	mu      sync.RWMutex
	entries map[string]memEntry
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[string]memEntry)}
}

// Put implements Store.
func (m *Memory) Put(key, contentType string, body []byte) error {
	cp := make([]byte, len(body))
	copy(cp, body)
	m.mu.Lock()
	m.entries[key] = memEntry{contentType: contentType, body: cp}
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) (string, []byte, error) {
	m.mu.RLock()
	e, ok := m.entries[key]
	m.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(e.body))
	copy(cp, e.body)
	return e.contentType, cp, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.entries = make(map[string]memEntry)
	m.mu.Unlock()
	return nil
}

// --- disk store ---

// FsyncPolicy selects when entry writes are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncNever relies on OS writeback (the default; a crash may lose the
	// most recent inserts, which recovery simply does not find).
	FsyncNever FsyncPolicy = iota
	// FsyncAlways syncs every entry file before the rename that publishes
	// it, so acknowledged inserts survive power loss.
	FsyncAlways
)

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	default:
		return "never"
	}
}

// ParseFsyncPolicy parses the swalad -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "never", "":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	default:
		return FsyncNever, fmt.Errorf("store: unknown fsync policy %q (want never or always)", s)
	}
}

// DefaultReprobeInterval is how long a degraded store waits between write
// re-probes.
const DefaultReprobeInterval = 5 * time.Second

// quarantineSubdir is where corrupt entry files are moved, inside the cache
// directory; files there are counted, never read back.
const quarantineSubdir = "quarantine"

// DiskOptions tunes OpenDisk. The zero value is the production default:
// the real filesystem, no fsync, 5-second degraded re-probe.
type DiskOptions struct {
	// FS is the filesystem seam (nil = OSFS); tests inject a FaultFS here.
	FS FS
	// Fsync is the entry-write durability policy.
	Fsync FsyncPolicy
	// ReprobeInterval is how often a degraded store lets a Put through as a
	// recovery probe (0 = DefaultReprobeInterval).
	ReprobeInterval time.Duration
}

// RecoveredEntry is one cache entry the startup scan rebuilt, with the
// meta-data core needs to repopulate the local directory table.
type RecoveredEntry struct {
	Key         string
	ContentType string
	Size        int64
	ExecTime    time.Duration
	Expires     time.Time
}

// RecoveryReport summarizes what OpenDisk found in an existing cache
// directory.
type RecoveryReport struct {
	// Recovered lists the verified entries, oldest write first.
	Recovered []RecoveredEntry
	// Quarantined is how many files failed header or checksum verification
	// and were moved into quarantine/.
	Quarantined int
	// OrphansSwept is how many abandoned .tmp files (crash before rename)
	// were deleted.
	OrphansSwept int
	// Duplicates is how many superseded files for an already-recovered key
	// (crash between rename and old-file removal) were deleted.
	Duplicates int
	// Expired is how many verified entries were past their TTL deadline and
	// deleted instead of recovered.
	Expired int
}

// Disk stores one file per entry under a directory, as the paper's server
// does. File names are sequence numbers; the key-to-file mapping is the
// in-memory meta-data, rebuilt from the self-describing files on OpenDisk.
type Disk struct {
	dir   string
	fs    FS
	fsync FsyncPolicy

	mu      sync.RWMutex
	files   map[string]string // key -> file path
	nextSeq int64
	closed  bool

	storeHealth
}

// NewDisk creates (or recovers) a disk store rooted at dir with default
// options, discarding the recovery report. Callers that care about recovered
// entries use OpenDisk.
func NewDisk(dir string) (*Disk, error) {
	d, _, err := OpenDisk(dir, DiskOptions{})
	return d, err
}

// OpenDisk opens a disk store rooted at dir, creating the directory if
// necessary and recovering any entries a previous incarnation left behind:
// every entry file is header- and checksum-verified, corrupt files are moved
// into quarantine/ (never served), abandoned temp files are swept, and
// duplicate files for one key (a crash between rename and old-file removal)
// keep only the newest write.
func OpenDisk(dir string, opts DiskOptions) (*Disk, *RecoveryReport, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.ReprobeInterval <= 0 {
		opts.ReprobeInterval = DefaultReprobeInterval
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	d := &Disk{
		dir:   dir,
		fs:    opts.FS,
		fsync: opts.Fsync,
		files: make(map[string]string),
	}
	d.reprobe = opts.ReprobeInterval
	rep, err := d.recover()
	if err != nil {
		return nil, nil, err
	}
	d.recovered = uint64(len(rep.Recovered))
	d.orphans = uint64(rep.OrphansSwept)
	d.quarantined.Store(uint64(rep.Quarantined))
	return d, rep, nil
}

// recover scans the store directory and rebuilds the key→file map.
func (d *Disk) recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	listing, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", d.dir, err)
	}
	type candidate struct {
		seq  int64
		path string
		meta entryMeta
	}
	byKey := make(map[string]candidate)
	now := time.Now()
	for _, de := range listing {
		name := de.Name()
		if de.IsDir() {
			continue // quarantine/ from an earlier incarnation
		}
		full := filepath.Join(d.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// A write that never reached its rename: the entry was never
			// acknowledged, so the debris is simply deleted.
			d.fs.Remove(full)
			rep.OrphansSwept++
			continue
		}
		seq, ok := parseEntryFileName(name)
		if !ok {
			continue // not ours; leave it alone
		}
		if seq > d.nextSeq {
			d.nextSeq = seq
		}
		data, err := d.fs.ReadFile(full)
		var meta entryMeta
		if err == nil {
			meta, _, err = decodeEntry(data)
		}
		if err != nil {
			d.moveToQuarantine(full)
			rep.Quarantined++
			continue
		}
		if !meta.Expires.IsZero() && !meta.Expires.After(now) {
			d.fs.Remove(full)
			rep.Expired++
			continue
		}
		if prev, dup := byKey[meta.Key]; dup {
			// Two verified files for one key: a crash landed between the
			// rename publishing the newer write and the old file's removal.
			// The higher sequence number is the newer write; the loser goes.
			if prev.seq >= seq {
				d.fs.Remove(full)
				rep.Duplicates++
				continue
			}
			d.fs.Remove(prev.path)
			rep.Duplicates++
		}
		byKey[meta.Key] = candidate{seq: seq, path: full, meta: meta}
	}
	ordered := make([]candidate, 0, len(byKey))
	for _, c := range byKey {
		ordered = append(ordered, c)
	}
	// Oldest write first, so directory repopulation approximates the
	// original insertion order (and LRU state) of the previous incarnation.
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, c := range ordered {
		d.files[c.meta.Key] = c.path
		rep.Recovered = append(rep.Recovered, RecoveredEntry{
			Key:         c.meta.Key,
			ContentType: c.meta.ContentType,
			Size:        int64(c.meta.bodyLen),
			ExecTime:    c.meta.ExecTime,
			Expires:     c.meta.Expires,
		})
	}
	return rep, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

func entryFileName(seq int64) string {
	return "entry-" + strconv.FormatInt(seq, 10) + ".cache"
}

func parseEntryFileName(name string) (int64, bool) {
	s, ok := strings.CutPrefix(name, "entry-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".cache")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Put implements Store.
func (d *Disk) Put(key, contentType string, body []byte) error {
	return d.PutEntry(key, contentType, body, 0, time.Time{})
}

// PutEntry implements MetaPutter: the entry file records execution time and
// TTL deadline so recovery can rebuild the directory entry.
func (d *Disk) PutEntry(key, contentType string, body []byte, execTime time.Duration, expires time.Time) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	d.nextSeq++
	seq := d.nextSeq
	d.mu.Unlock()

	if err := d.writeGate(); err != nil {
		d.putFailures.Add(1)
		return err
	}

	path := filepath.Join(d.dir, entryFileName(seq))
	if err := d.writeFileAtomic(path, encodeEntry(key, contentType, body, execTime, expires)); err != nil {
		d.noteWriteError(err)
		return err
	}
	d.noteWriteOK()

	// Publish in the map only after the file exists, and remove whatever
	// path the key previously held only after the swap: with two concurrent
	// Puts for one key, the second swapper removes the first's file, so no
	// loser file is ever leaked and the map always points at a live file.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.fs.Remove(path)
		return ErrClosed
	}
	old := d.files[key]
	d.files[key] = path
	d.mu.Unlock()
	if old != "" {
		d.fs.Remove(old)
	}
	return nil
}

// StorageStatus implements the health reporter used by /swala-status and
// the wire stats.
func (d *Disk) StorageStatus() StorageStatus { return d.status() }

// writeFileAtomic writes data to path via a temp file + rename so that a
// concurrent Get never observes a torn body. The temp file is removed on
// every failure path, so a short write cannot leave debris behind (debris
// from a crash is swept by the next OpenDisk).
func (d *Disk) writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if werr == nil && d.fsync == FsyncAlways {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		d.fs.Remove(tmp)
		return werr
	}
	if err := d.fs.Rename(tmp, path); err != nil {
		d.fs.Remove(tmp)
		return err
	}
	return nil
}

// Get implements Store. The body is checksum-verified on every read; a file
// that fails verification is quarantined and reported as an error, so a
// corrupt body is never served (the caller re-executes the CGI instead).
func (d *Disk) Get(key string) (string, []byte, error) {
	d.mu.RLock()
	path, ok := d.files[key]
	d.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	data, err := d.fs.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	meta, body, err := decodeEntry(data)
	if err == nil && meta.Key != key {
		err = fmt.Errorf("%w: file records key %q", ErrCorrupt, meta.Key)
	}
	if err != nil {
		d.quarantineEntry(key, path)
		return "", nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return meta.ContentType, body, nil
}

// quarantineEntry drops key's mapping (if it still points at path) and moves
// the file into quarantine/.
func (d *Disk) quarantineEntry(key, path string) {
	d.mu.Lock()
	if d.files[key] == path {
		delete(d.files, key)
	}
	d.mu.Unlock()
	d.moveToQuarantine(path)
	d.quarantined.Add(1)
}

// moveToQuarantine renames path into the quarantine subdirectory, falling
// back to deletion if the rename fails (served-corruption risk outweighs
// keeping the evidence).
func (d *Disk) moveToQuarantine(path string) {
	qdir := filepath.Join(d.dir, quarantineSubdir)
	d.fs.MkdirAll(qdir, 0o755)
	if err := d.fs.Rename(path, filepath.Join(qdir, filepath.Base(path))); err != nil {
		d.fs.Remove(path)
	}
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	path, ok := d.files[key]
	delete(d.files, key)
	d.mu.Unlock()
	if !ok {
		return nil
	}
	if err := d.fs.Remove(path); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	return nil
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.files)
}

// Close implements Store. The entry files are kept on disk so the next
// OpenDisk on the directory recovers them (a warm restart); tests that want
// the seed's delete-on-close behavior call Destroy.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.closed = true
	d.files = make(map[string]string)
	d.mu.Unlock()
	return nil
}

// Destroy closes the store and removes its directory and every file in it.
func (d *Disk) Destroy() error {
	d.Close()
	return d.fs.RemoveAll(d.dir)
}
