// Package store holds cached CGI result bodies. Following the paper's
// design, the production backend keeps each cached result in its own
// operating-system file and relies on the OS file cache to make recently
// used entries cheap to serve; only meta-data lives in memory. An in-memory
// backend with the same interface serves tests and experiments that should
// not touch disk.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// ErrNotFound is returned when a key has no stored body.
var ErrNotFound = errors.New("store: entry not found")

// Store persists cache entry bodies keyed by the canonical request key.
// Implementations are safe for concurrent use.
type Store interface {
	// Put stores body under key, overwriting any existing body.
	Put(key string, contentType string, body []byte) error
	// Get returns the body and content type for key.
	Get(key string) (contentType string, body []byte, err error)
	// Delete removes key's body. Deleting an absent key is not an error.
	Delete(key string) error
	// Len reports how many bodies are stored.
	Len() int
	// Close releases resources (and, for the disk store, removes files).
	Close() error
}

// --- in-memory store ---

type memEntry struct {
	contentType string
	body        []byte
}

// Memory is a map-backed Store for tests and simulation runs.
type Memory struct {
	mu      sync.RWMutex
	entries map[string]memEntry
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[string]memEntry)}
}

// Put implements Store.
func (m *Memory) Put(key, contentType string, body []byte) error {
	cp := make([]byte, len(body))
	copy(cp, body)
	m.mu.Lock()
	m.entries[key] = memEntry{contentType: contentType, body: cp}
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) (string, []byte, error) {
	m.mu.RLock()
	e, ok := m.entries[key]
	m.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(e.body))
	copy(cp, e.body)
	return e.contentType, cp, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.entries, key)
	m.mu.Unlock()
	return nil
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.entries = make(map[string]memEntry)
	m.mu.Unlock()
	return nil
}

// --- disk store ---

// Disk stores one file per entry under a directory, as the paper's server
// does. File names are sequence numbers; the key-to-file mapping is the
// in-memory meta-data. The content type is stored as a one-line prefix so
// each cache file is self-contained.
type Disk struct {
	dir string

	mu      sync.RWMutex
	files   map[string]string // key -> file path
	nextSeq int64
	closed  bool
}

// NewDisk creates a disk store rooted at dir, creating it if necessary.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	return &Disk{dir: dir, files: make(map[string]string)}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Put implements Store.
func (d *Disk) Put(key, contentType string, body []byte) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("store: disk store closed")
	}
	d.nextSeq++
	path := filepath.Join(d.dir, "entry-"+strconv.FormatInt(d.nextSeq, 10)+".cache")
	old := d.files[key]
	d.files[key] = path
	d.mu.Unlock()

	data := make([]byte, 0, len(contentType)+1+len(body))
	data = append(data, contentType...)
	data = append(data, '\n')
	data = append(data, body...)
	if err := writeFileAtomic(path, data); err != nil {
		d.mu.Lock()
		if d.files[key] == path {
			if old != "" {
				d.files[key] = old
			} else {
				delete(d.files, key)
			}
		}
		d.mu.Unlock()
		return err
	}
	if old != "" && old != path {
		os.Remove(old)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file + rename so that a
// concurrent Get never observes a torn body.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string) (string, []byte, error) {
	d.mu.RLock()
	path, ok := d.files[key]
	d.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	for i, b := range data {
		if b == '\n' {
			return string(data[:i]), data[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("store: %s: missing content-type prefix", path)
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	path, ok := d.files[key]
	delete(d.files, key)
	d.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.files)
}

// Close implements Store. It removes all cache files and the directory.
func (d *Disk) Close() error {
	d.mu.Lock()
	d.closed = true
	d.files = make(map[string]string)
	d.mu.Unlock()
	return os.RemoveAll(d.dir)
}
