package store

import (
	"errors"
	"io/fs"
	"os"
	"sync"
)

// ErrCrashed is what FaultFS returns for operations cut off by a simulated
// process crash (SetCrashed).
var ErrCrashed = errors.New("store: simulated crash")

// FaultFS wraps an FS with deterministic fault injection — the storage-layer
// counterpart of netx.Faulty. Tests and the crash experiment use it to
// simulate a full disk (every write fails with ENOSPC), a failing device
// (read EIO, fail-on-Nth-write), torn writes (a prefix of the data lands,
// then an error), and a process crash between write and rename (the rename
// fails and cleanup is suppressed, leaving the temp file as debris exactly
// as a kill would). All controls are safe for concurrent use.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// writeErr, when non-nil, fails every write with it (e.g. ENOSPC).
	writeErr error
	// nthCountdown > 0 arms a single failure: it decrements on each write
	// and the write that reaches zero fails with nthErr.
	nthCountdown int
	nthErr       error
	// tornBytes >= 0 arms one torn write: only that prefix of the next
	// write lands before it reports tornErr.
	tornBytes int
	tornErr   error
	// readErr, when non-nil, fails every ReadFile (e.g. EIO).
	readErr error
	// crashed simulates the process dying mid-Put: renames fail and
	// removes silently do nothing, so debris stays for recovery to find.
	crashed bool

	writes int // completed or attempted data writes, for tests
}

// NewFaultFS wraps inner (nil = the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, tornBytes: -1}
}

// FailWrites makes every subsequent write fail with err; nil heals.
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	f.writeErr = err
	f.mu.Unlock()
}

// FailNthWrite makes the n-th write from now (1 = the next one) fail once
// with err.
func (f *FaultFS) FailNthWrite(n int, err error) {
	f.mu.Lock()
	f.nthCountdown = n
	f.nthErr = err
	f.mu.Unlock()
}

// TornWrite makes the next write persist only its first n bytes and then
// report err — a short, torn write.
func (f *FaultFS) TornWrite(n int, err error) {
	f.mu.Lock()
	f.tornBytes = n
	f.tornErr = err
	f.mu.Unlock()
}

// FailReads makes every ReadFile fail with err; nil heals.
func (f *FaultFS) FailReads(err error) {
	f.mu.Lock()
	f.readErr = err
	f.mu.Unlock()
}

// SetCrashed simulates the process dying before the publish rename: while
// set, Rename fails with ErrCrashed and Remove is suppressed, so whatever
// the write left behind stays on disk for the next OpenDisk to deal with.
func (f *FaultFS) SetCrashed(crashed bool) {
	f.mu.Lock()
	f.crashed = crashed
	f.mu.Unlock()
}

// Writes reports how many data writes were attempted.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// writeVerdict decides the fate of one write of n bytes: how many bytes may
// land and which error (if any) to report.
func (f *FaultFS) writeVerdict(n int) (allow int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.tornBytes >= 0 {
		allow, err = f.tornBytes, f.tornErr
		f.tornBytes = -1
		if err == nil {
			err = errors.New("store: injected torn write")
		}
		if allow > n {
			allow = n
		}
		return allow, err
	}
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	if f.nthCountdown > 0 {
		f.nthCountdown--
		if f.nthCountdown == 0 {
			return 0, f.nthErr
		}
	}
	return n, nil
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string, perm os.FileMode) error { return f.inner.MkdirAll(dir, perm) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	err := f.readErr
	f.mu.Unlock()
	if err != nil {
		return nil, &os.PathError{Op: "read", Path: path, Err: err}
	}
	return f.inner.ReadFile(path)
}

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ErrCrashed}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		// A dead process cleans nothing up; the debris stays.
		return nil
	}
	return f.inner.Remove(path)
}

// RemoveAll implements FS.
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }

// OpenRead implements OpenReadFS, honoring the injected read fault.
func (f *FaultFS) OpenRead(path string) (ReaderAtCloser, error) {
	f.mu.Lock()
	err := f.readErr
	f.mu.Unlock()
	if err != nil {
		return nil, &os.PathError{Op: "read", Path: path, Err: err}
	}
	return openRead(f.inner, path)
}

// faultFile applies the parent's write verdicts to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	allow, err := f.fs.writeVerdict(len(p))
	if err != nil {
		n := 0
		if allow > 0 {
			n, _ = f.inner.Write(p[:allow])
		}
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error  { return f.inner.Sync() }
func (f *faultFile) Close() error { return f.inner.Close() }
