package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// storeHealth is the degraded-mode and fault-accounting state shared by the
// persistent backends (Disk and Log): a write failure flips the store into
// degraded read-only mode, one probe write per reprobe interval is let
// through, and a successful write lifts the mode. Embedded so both backends
// expose the same StorageStatus surface.
type storeHealth struct {
	reprobe time.Duration

	// smu orders the degraded/probe transitions; counters are atomics so
	// StorageStatus stays cheap.
	smu           sync.Mutex
	degraded      bool
	degradedSince time.Time
	lastErr       string
	lastProbe     time.Time

	putFailures atomic.Uint64
	quarantined atomic.Uint64
	recovered   uint64 // fixed at open
	orphans     uint64 // fixed at open
}

// writeGate decides whether a Put may attempt its write: always in healthy
// mode; in degraded mode only one probe per reprobe interval.
func (h *storeHealth) writeGate() error {
	h.smu.Lock()
	defer h.smu.Unlock()
	if !h.degraded {
		return nil
	}
	if time.Since(h.lastProbe) >= h.reprobe {
		// This Put is the probe; its outcome decides whether the mode lifts.
		h.lastProbe = time.Now()
		return nil
	}
	return fmt.Errorf("%w: %s", ErrDegraded, h.lastErr)
}

// noteWriteError records a storage fault and enters degraded mode.
func (h *storeHealth) noteWriteError(err error) {
	h.putFailures.Add(1)
	h.smu.Lock()
	if !h.degraded {
		h.degraded = true
		h.degradedSince = time.Now()
	}
	h.lastErr = err.Error()
	h.lastProbe = time.Now()
	h.smu.Unlock()
}

// noteWriteOK records a successful write, leaving degraded mode if active.
func (h *storeHealth) noteWriteOK() {
	h.smu.Lock()
	if h.degraded {
		h.degraded = false
		h.degradedSince = time.Time{}
	}
	h.smu.Unlock()
}

// status snapshots the health state for /swala-status and the wire stats.
func (h *storeHealth) status() StorageStatus {
	h.smu.Lock()
	st := StorageStatus{
		Persistent:    true,
		Degraded:      h.degraded,
		DegradedSince: h.degradedSince,
		LastError:     h.lastErr,
	}
	h.smu.Unlock()
	st.PutFailures = h.putFailures.Load()
	st.Quarantined = h.quarantined.Load()
	st.Recovered = h.recovered
	st.OrphansSwept = h.orphans
	return st
}
