package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// backends returns a fresh instance of every Store implementation.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"memory": NewMemory(),
		"disk":   disk,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if err := s.Put("GET /q?a=1", "text/html", []byte("<b>result</b>")); err != nil {
				t.Fatal(err)
			}
			ct, body, err := s.Get("GET /q?a=1")
			if err != nil {
				t.Fatal(err)
			}
			if ct != "text/html" || string(body) != "<b>result</b>" {
				t.Fatalf("got (%q, %q)", ct, body)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.Put("k", "text/plain", []byte("v1"))
			s.Put("k", "text/html", []byte("v2"))
			ct, body, err := s.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if ct != "text/html" || string(body) != "v2" {
				t.Fatalf("got (%q, %q), want overwrite", ct, body)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.Put("k", "t", []byte("v"))
			if err := s.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound after delete", err)
			}
			if err := s.Delete("k"); err != nil {
				t.Fatalf("double delete: %v", err)
			}
			if s.Len() != 0 {
				t.Fatalf("Len = %d, want 0", s.Len())
			}
		})
	}
}

func TestEmptyBody(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.Put("k", "text/plain", nil)
			ct, body, err := s.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if ct != "text/plain" || len(body) != 0 {
				t.Fatalf("got (%q, %q)", ct, body)
			}
		})
	}
}

func TestBinaryBodyWithNewlines(t *testing.T) {
	raw := []byte("line1\nline2\n\x00\xffbinary")
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.Put("k", "application/octet-stream", raw)
			_, body, err := s.Get("k")
			if err != nil {
				t.Fatal(err)
			}
			if string(body) != string(raw) {
				t.Fatalf("body = %q, want %q", body, raw)
			}
		})
	}
}

func TestGetReturnsCopy(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			s.Put("k", "t", []byte("abc"))
			_, body, _ := s.Get("k")
			body[0] = 'X'
			_, again, _ := s.Get("k")
			if string(again) != "abc" {
				t.Fatal("Get must return an independent copy")
			}
		})
	}
}

func TestPutCopiesInput(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			src := []byte("abc")
			s.Put("k", "t", src)
			src[0] = 'X'
			_, body, _ := s.Get("k")
			if string(body) != "abc" {
				t.Fatal("Put must not alias the caller's slice")
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := fmt.Sprintf("k%d-%d", w, i%10)
						s.Put(key, "t", []byte(key))
						if _, body, err := s.Get(key); err == nil && string(body) != key {
							t.Errorf("corrupt read: %q", body)
						}
						if i%7 == 0 {
							s.Delete(key)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestDiskFilesOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("a", "t", []byte("1"))
	d.Put("b", "t", []byte("2"))
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files on disk = %d, want 2", len(files))
	}
	d.Delete("a")
	files, _ = os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("files after delete = %d, want 1", len(files))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("Close must keep the cache directory for recovery")
	}
	if err := d.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("Destroy must remove the cache directory")
	}
}

func TestDiskOverwriteRemovesOldFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("k", "t", []byte("v1"))
	d.Put("k", "t", []byte("v2"))
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("files = %d after overwrite, want 1 (old file must be removed)", len(files))
	}
}

func TestDiskPutAfterClose(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := d.Put("k", "t", []byte("v")); err == nil {
		t.Fatal("Put after Close succeeded, want error")
	}
}

func TestDiskDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "c")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", d.Dir(), dir)
	}
}

func TestRoundTripProperty(t *testing.T) {
	mem := NewMemory()
	disk, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for name, s := range map[string]Store{"memory": mem, "disk": disk} {
		s := s
		f := func(keyRaw []byte, body []byte) bool {
			key := "k" + fmt.Sprintf("%x", keyRaw)
			if err := s.Put(key, "ct", body); err != nil {
				return false
			}
			ct, got, err := s.Get(key)
			if err != nil || ct != "ct" {
				return false
			}
			if len(got) != len(body) {
				return false
			}
			for i := range got {
				if got[i] != body[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
