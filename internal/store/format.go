package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Entry file format, version 1. Each cache file is self-describing so a
// restarted node can rebuild its key→file map (and its directory table) from
// the files alone, and so bit rot or truncation is detected before a body is
// ever served:
//
//	offset 0  magic   "SWLC" (4 bytes)
//	offset 4  version u8 (currently 1)
//	offset 5  crc     u32, IEEE CRC32 over every byte after this field
//	offset 9  keyLen  u32, then the canonical cache key
//	          ctLen   u32, then the content type
//	          exec    i64, CGI execution time in nanoseconds
//	          expires i64, TTL deadline as Unix nanoseconds (0 = no TTL)
//	          bodyLen u32, then the body — which must end the file exactly
//
// All integers are big-endian. The checksum covers the meta-data fields and
// the body, so a truncated file, a torn final block, or a flipped bit
// anywhere after the magic fails verification.

// ErrCorrupt marks an entry file that failed structural or checksum
// verification; such files are quarantined, never served.
var ErrCorrupt = errors.New("store: corrupt entry")

const (
	entryVersion = 1
	// entryFixedSize is the encoded size of an entry with empty key, empty
	// content type, and empty body: the parse floor.
	entryFixedSize = 4 + 1 + 4 + 4 + 4 + 8 + 8 + 4
	// crcOffset is where the checksum field sits; coverage starts right
	// after it.
	crcOffset = 5
)

var entryMagic = [4]byte{'S', 'W', 'L', 'C'}

// entryMeta is the decoded header of one entry file.
type entryMeta struct {
	Key         string
	ContentType string
	ExecTime    time.Duration
	Expires     time.Time
	// bodyOff and bodyLen locate the body inside the encoded buffer.
	bodyOff int
	bodyLen int
}

// encodeEntry serializes one cache entry in format version 1.
func encodeEntry(key, contentType string, body []byte, execTime time.Duration, expires time.Time) []byte {
	n := entryFixedSize + len(key) + len(contentType) + len(body)
	buf := make([]byte, 0, n)
	buf = append(buf, entryMagic[:]...)
	buf = append(buf, entryVersion)
	buf = binary.BigEndian.AppendUint32(buf, 0) // crc placeholder
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(contentType)))
	buf = append(buf, contentType...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(execTime.Nanoseconds()))
	var exp int64
	if !expires.IsZero() {
		exp = expires.UnixNano()
	}
	buf = binary.BigEndian.AppendUint64(buf, uint64(exp))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	binary.BigEndian.PutUint32(buf[crcOffset:], crc32.ChecksumIEEE(buf[crcOffset+4:]))
	return buf
}

// errShortRecord marks a record that ends before its own declared lengths:
// either truncated, or its tail never made it to disk. In a segmented log
// this at the tail of the newest segment is a torn append (truncate, don't
// quarantine); anywhere else it is corruption. Always wrapped in ErrCorrupt.
var errShortRecord = errors.New("record shorter than its header declares")

// parseEntryRecord structurally decodes one entry record at the start of
// data — which may be followed by further records — without verifying the
// checksum. It returns the decoded meta and the record's encoded length.
// It never panics on arbitrary input (FuzzParseEntryHeader holds the shared
// parse to that); every malformation is reported as ErrCorrupt, with
// too-few-bytes cases also matching errShortRecord.
func parseEntryRecord(data []byte) (entryMeta, int, error) {
	var m entryMeta
	if len(data) < entryFixedSize {
		return m, 0, fmt.Errorf("%w: %w: %d bytes, want at least %d", ErrCorrupt, errShortRecord, len(data), entryFixedSize)
	}
	if [4]byte(data[:4]) != entryMagic {
		return m, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if data[4] != entryVersion {
		return m, 0, fmt.Errorf("%w: unknown format version %d", ErrCorrupt, data[4])
	}
	off := crcOffset + 4

	// Variable-length fields; every length is checked against the remaining
	// buffer before use so a corrupt length can neither panic nor allocate.
	next := func(what string) ([]byte, error) {
		if len(data)-off < 4 {
			return nil, fmt.Errorf("%w: %w: before %s length", ErrCorrupt, errShortRecord, what)
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || n > len(data)-off {
			return nil, fmt.Errorf("%w: %w: %s length %d exceeds buffer", ErrCorrupt, errShortRecord, what, n)
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	key, err := next("key")
	if err != nil {
		return m, 0, err
	}
	ct, err := next("content type")
	if err != nil {
		return m, 0, err
	}
	if len(data)-off < 16 {
		return m, 0, fmt.Errorf("%w: %w: meta fields", ErrCorrupt, errShortRecord)
	}
	m.Key = string(key)
	m.ContentType = string(ct)
	m.ExecTime = time.Duration(binary.BigEndian.Uint64(data[off:]))
	exp := int64(binary.BigEndian.Uint64(data[off+8:]))
	if exp != 0 {
		m.Expires = time.Unix(0, exp)
	}
	off += 16
	body, err := next("body")
	if err != nil {
		return m, 0, err
	}
	m.bodyLen = len(body)
	m.bodyOff = off - len(body)
	return m, off, nil
}

// parseEntryHeader structurally decodes a whole-file entry buffer without
// verifying the checksum: one record, nothing after it.
func parseEntryHeader(data []byte) (entryMeta, error) {
	m, n, err := parseEntryRecord(data)
	if err != nil {
		return m, err
	}
	if n != len(data) {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-n)
	}
	return m, nil
}

// decodeRecord parses and checksum-verifies the record at the start of data,
// returning its meta, body (aliasing data), and encoded length.
func decodeRecord(data []byte) (entryMeta, []byte, int, error) {
	m, n, err := parseEntryRecord(data)
	if err != nil {
		return m, nil, 0, err
	}
	if got, want := crc32.ChecksumIEEE(data[crcOffset+4:n]), binary.BigEndian.Uint32(data[crcOffset:]); got != want {
		return m, nil, n, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return m, data[m.bodyOff : m.bodyOff+m.bodyLen], n, nil
}

// decodeEntry parses and checksum-verifies an entry buffer, returning the
// meta-data and the body (aliasing data).
func decodeEntry(data []byte) (entryMeta, []byte, error) {
	m, err := parseEntryHeader(data)
	if err != nil {
		return m, nil, err
	}
	if got, want := crc32.ChecksumIEEE(data[crcOffset+4:]), binary.BigEndian.Uint32(data[crcOffset:]); got != want {
		return m, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return m, data[m.bodyOff : m.bodyOff+m.bodyLen], nil
}
