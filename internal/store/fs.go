package store

import (
	"bytes"
	"io"
	"io/fs"
	"os"
)

// FS abstracts the filesystem calls the disk store makes, so tests can
// inject storage faults (disk full, I/O errors, torn writes, crashes
// between write and rename) the way netx.Faulty injects network faults.
// The production implementation is OSFS; FaultFS wraps any FS with
// deterministic fault injection.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// RemoveAll deletes path recursively.
	RemoveAll(path string) error
}

// File is the writable handle Create returns; the store writes the whole
// entry, optionally syncs, and closes.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// ReaderAtCloser is the random-access read handle OpenRead returns.
type ReaderAtCloser interface {
	io.ReaderAt
	Close() error
}

// OpenReadFS is the optional extension the log-structured store uses for
// record-at-offset reads. An FS that does not implement it still works —
// the log falls back to ReadFile-and-slice, reading the whole segment per
// Get — so existing FS implementations stay valid.
type OpenReadFS interface {
	OpenRead(path string) (ReaderAtCloser, error)
}

// openRead opens path for random-access reads on any FS, preferring the
// OpenReadFS fast path.
func openRead(f FS, path string) (ReaderAtCloser, error) {
	if or, ok := f.(OpenReadFS); ok {
		return or.OpenRead(path)
	}
	data, err := f.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bufReaderAt{bytes.NewReader(data)}, nil
}

// bufReaderAt adapts an in-memory buffer to ReaderAtCloser.
type bufReaderAt struct{ *bytes.Reader }

// Close implements ReaderAtCloser.
func (bufReaderAt) Close() error { return nil }

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements FS.
func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// RemoveAll implements FS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// OpenRead implements OpenReadFS.
func (OSFS) OpenRead(path string) (ReaderAtCloser, error) { return os.Open(path) }
