package store

import (
	"bytes"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	exp := time.Unix(0, time.Now().Add(time.Hour).UnixNano())
	cases := []struct {
		key, ct string
		body    []byte
		exec    time.Duration
		expires time.Time
	}{
		{"GET /cgi-bin/q?a=1", "text/html", []byte("<b>x</b>"), 3 * time.Millisecond, exp},
		{"", "", nil, 0, time.Time{}},
		{"k", "application/octet-stream", []byte{0, 1, 2, 0xff}, time.Hour, time.Time{}},
	}
	for _, c := range cases {
		buf := encodeEntry(c.key, c.ct, c.body, c.exec, c.expires)
		m, body, err := decodeEntry(buf)
		if err != nil {
			t.Fatalf("decode(%q): %v", c.key, err)
		}
		if m.Key != c.key || m.ContentType != c.ct || !bytes.Equal(body, c.body) {
			t.Fatalf("round trip lost data: %+v, %q", m, body)
		}
		if m.ExecTime != c.exec || !m.Expires.Equal(c.expires) {
			t.Fatalf("round trip lost meta: exec %v, expires %v", m.ExecTime, m.Expires)
		}
	}
}

func TestDecodeEntryRejectsMutations(t *testing.T) {
	buf := encodeEntry("key", "ct", []byte("body bytes"), time.Millisecond, time.Time{})
	// Flipping any single byte after the magic must fail the checksum (or the
	// structural parse); the magic bytes fail the magic check directly.
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x01
		if _, _, err := decodeEntry(mut); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
	}
	// Truncation at every length must be rejected too.
	for n := range buf {
		if _, _, err := decodeEntry(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// Trailing garbage must be rejected.
	if _, _, err := decodeEntry(append(append([]byte(nil), buf...), 0x00)); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

// FuzzParseEntryHeader holds parseEntryHeader to its contract: never panic on
// arbitrary bytes, and accept-with-fidelity anything encodeEntry produced.
func FuzzParseEntryHeader(f *testing.F) {
	f.Add(encodeEntry("GET /cgi-bin/q?a=1", "text/html", []byte("<b>x</b>"), time.Millisecond, time.Unix(0, 1754000000000000000)))
	f.Add(encodeEntry("", "", nil, 0, time.Time{}))
	torn := encodeEntry("k", "t", []byte("0123456789"), 0, time.Time{})
	f.Add(torn[:len(torn)/2])
	f.Add([]byte("SWLC"))
	f.Add([]byte{})
	bad := encodeEntry("k", "t", []byte("x"), 0, time.Time{})
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseEntryHeader(data)
		if err != nil {
			return
		}
		// A structurally valid buffer must re-encode to the same bytes once
		// the body is extracted — the format is canonical.
		body := data[m.bodyOff : m.bodyOff+m.bodyLen]
		re := encodeEntry(m.Key, m.ContentType, body, m.ExecTime, m.Expires)
		// The crc field may differ (parse does not verify it); blank it on
		// both sides before comparing.
		a := append([]byte(nil), data...)
		b := append([]byte(nil), re...)
		for i := crcOffset; i < crcOffset+4; i++ {
			a[i], b[i] = 0, 0
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("parse/encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}
