package store

import (
	"container/list"
	"sync"
	"time"
)

// Tiered layers a size-bounded in-memory LRU read cache over a backing
// Store, so repeated Gets for hot keys skip the backing store entirely
// (for the Disk backend, that is an os.ReadFile per hit). The paper's
// design relies on the OS file cache for this; Tiered is the explicit
// beyond-the-paper equivalent with a hard memory bound.
//
// Consistency: Put writes through to the backing store and, only on
// success, refreshes the memory tier; Delete invalidates the memory tier
// before the backing store, so a concurrent Get can never resurrect a
// deleted entry from memory after Delete returns.
type Tiered struct {
	backing Store

	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element whose Value is *tierEntry

	hits   int64 // Gets served from memory
	misses int64 // Gets that fell through to the backing store
}

// tierEntry is one memory-tier resident body.
type tierEntry struct {
	key         string
	contentType string
	body        []byte
}

// NewTiered wraps backing with an in-memory LRU read cache bounded to
// maxBytes of body data. Bodies larger than maxBytes bypass the memory tier
// (they would evict everything else for a single entry).
func NewTiered(backing Store, maxBytes int64) *Tiered {
	return &Tiered{
		backing:  backing,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Backing returns the wrapped store.
func (t *Tiered) Backing() Store { return t.backing }

// Put implements Store: write-through, then refresh the memory tier.
func (t *Tiered) Put(key, contentType string, body []byte) error {
	if err := t.backing.Put(key, contentType, body); err != nil {
		// The memory tier may hold the previous body for key; drop it so a
		// failed overwrite cannot leave memory newer than the backing store.
		t.invalidate(key)
		return err
	}
	t.admit(key, contentType, body)
	return nil
}

// PutEntry implements MetaPutter: write through with meta-data (when the
// backing store persists it), then refresh the memory tier; a failed write
// invalidates the tier exactly as Put does.
func (t *Tiered) PutEntry(key, contentType string, body []byte, execTime time.Duration, expires time.Time) error {
	if err := PutWithMeta(t.backing, key, contentType, body, execTime, expires); err != nil {
		t.invalidate(key)
		return err
	}
	t.admit(key, contentType, body)
	return nil
}

// Get implements Store: memory tier first, backing store on a miss (with
// the fetched body promoted into the memory tier).
func (t *Tiered) Get(key string) (string, []byte, error) {
	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		e := el.Value.(*tierEntry)
		t.ll.MoveToFront(el)
		t.hits++
		ct := e.contentType
		// Copy out under the lock: eviction never mutates bodies, but the
		// caller must get a stable slice even if the entry is evicted and
		// the tier repopulated concurrently.
		cp := make([]byte, len(e.body))
		copy(cp, e.body)
		t.mu.Unlock()
		return ct, cp, nil
	}
	t.misses++
	t.mu.Unlock()

	ct, body, err := t.backing.Get(key)
	if err != nil {
		return "", nil, err
	}
	t.admit(key, ct, body)
	return ct, body, nil
}

// GetCached returns key's body only if it is resident in the memory tier,
// never falling through to the backing store. A hit counts toward the
// memory-tier hit statistics and refreshes the entry's LRU position; a
// non-resident key is NOT counted as a miss — the caller is expected to fall
// through to Get, which records it. The fetch pipeline's mem stage uses this
// to serve hot keys without touching the backing store.
func (t *Tiered) GetCached(key string) (contentType string, body []byte, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, resident := t.items[key]
	if !resident {
		return "", nil, false
	}
	e := el.Value.(*tierEntry)
	t.ll.MoveToFront(el)
	t.hits++
	cp := make([]byte, len(e.body))
	copy(cp, e.body)
	return e.contentType, cp, true
}

// Delete implements Store: invalidate memory first, then the backing store.
func (t *Tiered) Delete(key string) error {
	t.invalidate(key)
	return t.backing.Delete(key)
}

// Len implements Store: entry count is owned by the backing store.
func (t *Tiered) Len() int { return t.backing.Len() }

// Close implements Store.
func (t *Tiered) Close() error {
	t.mu.Lock()
	t.ll = list.New()
	t.items = make(map[string]*list.Element)
	t.curBytes = 0
	t.mu.Unlock()
	return t.backing.Close()
}

// MemStats reports memory-tier effectiveness: resident entries and bytes,
// and how many Gets were served from memory vs the backing store.
func (t *Tiered) MemStats() (entries int, bytes, hits, misses int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len(), t.curBytes, t.hits, t.misses
}

// admit installs (or refreshes) a body in the memory tier, evicting from
// the LRU tail to stay within maxBytes. The body is copied so the tier
// never aliases caller- or backing-store-owned memory.
func (t *Tiered) admit(key, contentType string, body []byte) {
	if int64(len(body)) > t.maxBytes {
		// Oversized bodies are served straight from the backing store; make
		// sure no stale smaller body lingers for the key.
		t.invalidate(key)
		return
	}
	cp := make([]byte, len(body))
	copy(cp, body)

	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		e := el.Value.(*tierEntry)
		t.curBytes += int64(len(cp)) - int64(len(e.body))
		e.contentType = contentType
		e.body = cp
		t.ll.MoveToFront(el)
	} else {
		el := t.ll.PushFront(&tierEntry{key: key, contentType: contentType, body: cp})
		t.items[key] = el
		t.curBytes += int64(len(cp))
	}
	for t.curBytes > t.maxBytes {
		tail := t.ll.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*tierEntry)
		t.ll.Remove(tail)
		delete(t.items, e.key)
		t.curBytes -= int64(len(e.body))
	}
	t.mu.Unlock()
}

// invalidate drops key from the memory tier if resident.
func (t *Tiered) invalidate(key string) {
	t.mu.Lock()
	if el, ok := t.items[key]; ok {
		e := el.Value.(*tierEntry)
		t.ll.Remove(el)
		delete(t.items, key)
		t.curBytes -= int64(len(e.body))
	}
	t.mu.Unlock()
}
