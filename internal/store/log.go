package store

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Log is the log-structured alternative to the file-per-entry Disk backend.
// Entries are appended to segmented, append-only files ("seg-N.log"), each
// record being exactly the PR 5 checksummed entry encoding; the key→location
// index lives in memory and is rebuilt by a recovery scan on open. Where
// Disk pays create + write + rename (+ fsync) per warm miss, Log pays one
// sequential append — the point of the backend.
//
// Crash semantics match Disk's guarantees through different mechanics:
//
//   - A crash mid-append leaves a torn record at the tail of the newest
//     segment; recovery truncates it away (the write was never acknowledged
//     as durable under FsyncNever, exactly like Disk's orphaned temp files).
//   - Bit rot is caught by the per-record checksum — at recovery the damaged
//     record is skipped (counted as quarantined) and the scan resynchronizes
//     on the next record magic; at read time the entry is dropped from the
//     index and an error returned, so a corrupt body is never served.
//   - Overwrites and deletes append (tombstones for deletes); the old bytes
//     become dead and are reclaimed by compaction, which rewrites the live
//     set into a fresh segment and deletes the old ones. Replay order is
//     (segment, offset) ascending with newest-wins, so a crash at any point
//     of compaction leaves a directory that replays to the same live set.
type Log struct {
	dir   string
	fs    FS
	fsync FsyncPolicy

	segMax      int64
	compactFrac float64
	compactMin  int64

	mu         sync.RWMutex
	index      map[string]recordLoc
	active     File  // nil until the first append after open/rotate
	activeSeq  int64 // valid only when active != nil
	activeOff  int64
	nextSeq    int64           // highest segment number ever used
	segBytes   map[int64]int64 // on-disk bytes per segment
	totalBytes int64           // bytes across all segments (live + dead)
	deadBytes  int64           // bytes no current index entry points at
	closed     bool

	compacting bool // one compaction at a time; guarded by mu
	compactWG  sync.WaitGroup

	storeHealth
}

// recordLoc locates one live record: segment number, byte offset, length.
type recordLoc struct {
	seg int64
	off int64
	n   int
}

// tombstoneContentType marks a deletion record in the log. Real entries
// never carry it: content types come from CGI responses, and the store
// rejects storing a body under the sentinel.
const tombstoneContentType = "application/x-swala-tombstone"

// LogOptions tunes OpenLog. The zero value is the production default: the
// real filesystem, no fsync, 5-second degraded re-probe, 4 MiB segments,
// compaction at 50% dead bytes once 1 MiB is dead.
type LogOptions struct {
	// FS is the filesystem seam (nil = OSFS); tests inject a FaultFS here.
	FS FS
	// Fsync is the append durability policy (FsyncAlways syncs per append).
	Fsync FsyncPolicy
	// ReprobeInterval is how often a degraded store lets a Put through as a
	// recovery probe (0 = DefaultReprobeInterval).
	ReprobeInterval time.Duration
	// SegmentMaxBytes rotates the active segment once it reaches this size
	// (0 = DefaultSegmentMaxBytes).
	SegmentMaxBytes int64
	// CompactFraction triggers compaction when dead bytes exceed this
	// fraction of total bytes (0 = 0.5).
	CompactFraction float64
	// CompactMinBytes is the dead-byte floor below which compaction never
	// runs, so small stores don't churn (0 = DefaultCompactMinBytes).
	CompactMinBytes int64
}

// Defaults for LogOptions zero values.
const (
	DefaultSegmentMaxBytes = 4 << 20
	DefaultCompactMinBytes = 1 << 20
	defaultCompactFraction = 0.5
)

// OpenLog opens a log-structured store rooted at dir, creating the directory
// if necessary and recovering whatever a previous incarnation left behind:
// segments are replayed in (segment, offset) order with newest-wins, torn
// tails are truncated, damaged records are skipped and counted, tombstones
// erase, and expired entries are dropped.
func OpenLog(dir string, opts LogOptions) (*Log, *RecoveryReport, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.ReprobeInterval <= 0 {
		opts.ReprobeInterval = DefaultReprobeInterval
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = DefaultSegmentMaxBytes
	}
	if opts.CompactFraction <= 0 {
		opts.CompactFraction = defaultCompactFraction
	}
	if opts.CompactMinBytes <= 0 {
		opts.CompactMinBytes = DefaultCompactMinBytes
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	l := &Log{
		dir:         dir,
		fs:          opts.FS,
		fsync:       opts.Fsync,
		segMax:      opts.SegmentMaxBytes,
		compactFrac: opts.CompactFraction,
		compactMin:  opts.CompactMinBytes,
		index:       make(map[string]recordLoc),
		segBytes:    make(map[int64]int64),
	}
	l.reprobe = opts.ReprobeInterval
	rep, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.recovered = uint64(len(rep.Recovered))
	l.orphans = uint64(rep.OrphansSwept)
	l.quarantined.Store(uint64(rep.Quarantined))
	return l, rep, nil
}

// Dir returns the store's root directory.
func (l *Log) Dir() string { return l.dir }

func segmentFileName(seq int64) string {
	return "seg-" + strconv.FormatInt(seq, 10) + ".log"
}

func parseSegmentFileName(name string) (int64, bool) {
	s, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".log")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

func (l *Log) segmentPath(seq int64) string {
	return filepath.Join(l.dir, segmentFileName(seq))
}

// recover scans the segment files and rebuilds the in-memory index.
func (l *Log) recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	listing, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", l.dir, err)
	}
	var seqs []int64
	for _, de := range listing {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		full := filepath.Join(l.dir, name)
		if strings.HasSuffix(name, ".tmp") {
			// A truncation or compaction that never reached its rename: the
			// original file is still in place, so the debris just goes.
			l.fs.Remove(full)
			rep.OrphansSwept++
			continue
		}
		seq, ok := parseSegmentFileName(name)
		if !ok {
			continue // not ours; leave it alone
		}
		if seq > l.nextSeq {
			l.nextSeq = seq
		}
		seqs = append(seqs, seq)
	}
	// Replay in segment order so later segments overwrite earlier ones.
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	metas := make(map[string]entryMeta)
	now := time.Now()
	for i, seq := range seqs {
		isLast := i == len(seqs)-1
		path := l.segmentPath(seq)
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: reading %s: %w", path, err)
		}
		if len(data) == 0 {
			// An empty trailing segment (rotation or open with no appends
			// before the crash) carries nothing; sweep it.
			l.fs.Remove(path)
			rep.OrphansSwept++
			continue
		}
		off := 0
		for off < len(data) {
			m, body, n, derr := decodeRecord(data[off:])
			if derr == nil {
				loc := recordLoc{seg: seq, off: int64(off), n: n}
				off += n
				if m.ContentType == tombstoneContentType {
					delete(l.index, m.Key)
					delete(metas, m.Key)
					continue
				}
				if !m.Expires.IsZero() && !m.Expires.After(now) {
					if _, lived := l.index[m.Key]; lived {
						delete(l.index, m.Key)
						delete(metas, m.Key)
					}
					rep.Expired++
					continue
				}
				if _, dup := l.index[m.Key]; dup {
					// A superseded copy (overwrite, or a crash mid-compaction
					// that left both the old segments and their rewrite).
					rep.Duplicates++
				}
				_ = body // bodies stay on disk; only locations are indexed
				l.index[m.Key] = loc
				metas[m.Key] = m
				continue
			}
			if errors.Is(derr, errShortRecord) && isLast {
				// Torn tail of the newest segment: the record's append never
				// completed, so it was never acknowledged. Truncate it away so
				// the segment is clean for future scans.
				if terr := l.truncateSegment(path, data[:off]); terr != nil {
					return nil, terr
				}
				data = data[:off]
				rep.OrphansSwept++
				break
			}
			// Damaged record: count it, then resynchronize on the next record
			// magic. A CRC failure yields a clean record length to skip; a
			// structural failure forces a byte scan.
			rep.Quarantined++
			if n > 0 {
				off += n
				continue
			}
			next := nextMagic(data, off+1)
			if next < 0 {
				if isLast {
					if terr := l.truncateSegment(path, data[:off]); terr != nil {
						return nil, terr
					}
					data = data[:off]
				}
				break
			}
			off = next
		}
		if len(data) > 0 {
			l.segBytes[seq] = int64(len(data))
			l.totalBytes += int64(len(data))
		}
	}
	// Surviving index entries, in write order, for directory repopulation.
	type liveEntry struct {
		loc  recordLoc
		meta entryMeta
	}
	ordered := make([]liveEntry, 0, len(l.index))
	var liveBytes int64
	for key, loc := range l.index {
		ordered = append(ordered, liveEntry{loc: loc, meta: metas[key]})
		liveBytes += int64(loc.n)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].loc.seg != ordered[j].loc.seg {
			return ordered[i].loc.seg < ordered[j].loc.seg
		}
		return ordered[i].loc.off < ordered[j].loc.off
	})
	for _, e := range ordered {
		rep.Recovered = append(rep.Recovered, RecoveredEntry{
			Key:         e.meta.Key,
			ContentType: e.meta.ContentType,
			Size:        int64(e.meta.bodyLen),
			ExecTime:    e.meta.ExecTime,
			Expires:     e.meta.Expires,
		})
	}
	l.deadBytes = l.totalBytes - liveBytes
	return rep, nil
}

// SegmentSpan locates one structurally parseable record inside a segment
// image; Valid reports whether its checksum verifies. The crash harness uses
// spans to aim damage at individual records.
type SegmentSpan struct {
	Off, Len int
	Key      string
	Valid    bool
}

// ScanSegment walks a segment image and returns a span per structurally
// parseable record, stopping at a torn tail or structural damage.
func ScanSegment(data []byte) []SegmentSpan {
	var spans []SegmentSpan
	off := 0
	for off < len(data) {
		m, n, err := parseEntryRecord(data[off:])
		if err != nil {
			break
		}
		_, _, _, verr := decodeRecord(data[off : off+n])
		spans = append(spans, SegmentSpan{Off: off, Len: n, Key: m.Key, Valid: verr == nil})
		off += n
	}
	return spans
}

// nextMagic returns the offset of the next record magic at or after from,
// or -1.
func nextMagic(data []byte, from int) int {
	for i := from; i+len(entryMagic) <= len(data); i++ {
		if data[i] == entryMagic[0] && [4]byte(data[i:i+4]) == entryMagic {
			return i
		}
	}
	return -1
}

// truncateSegment rewrites path to keep, via temp + rename so a crash during
// the truncation never loses the good prefix.
func (l *Log) truncateSegment(path string, keep []byte) error {
	tmp := path + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: truncating %s: %w", path, err)
	}
	_, werr := f.Write(keep)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = l.fs.Rename(tmp, path)
	}
	if werr != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("store: truncating %s: %w", path, werr)
	}
	return nil
}

// rotateLocked closes the active segment (if any) and opens a fresh one.
// Callers hold l.mu.
func (l *Log) rotateLocked() error {
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.nextSeq++
	f, err := l.fs.Create(l.segmentPath(l.nextSeq))
	if err != nil {
		l.nextSeq-- // the segment never existed
		return err
	}
	l.active = f
	l.activeSeq = l.nextSeq
	l.activeOff = 0
	l.segBytes[l.activeSeq] = 0
	return nil
}

// appendLocked appends one encoded record to the active segment, rotating
// first if needed, and returns where it landed. Callers hold l.mu. On error
// the active segment is abandoned (its tail may be torn); the next append
// starts a fresh segment so later records never follow garbage.
func (l *Log) appendLocked(rec []byte) (recordLoc, error) {
	if l.active == nil || l.activeOff >= l.segMax {
		if err := l.rotateLocked(); err != nil {
			return recordLoc{}, err
		}
	}
	_, err := l.active.Write(rec)
	if err == nil && l.fsync == FsyncAlways {
		err = l.active.Sync()
	}
	if err != nil {
		// The segment may now hold a torn record; recovery would truncate it,
		// but the running store must also never append after the tear.
		l.active.Close()
		l.active = nil
		return recordLoc{}, err
	}
	loc := recordLoc{seg: l.activeSeq, off: l.activeOff, n: len(rec)}
	l.activeOff += int64(len(rec))
	l.segBytes[l.activeSeq] += int64(len(rec))
	l.totalBytes += int64(len(rec))
	return loc, nil
}

// Put implements Store.
func (l *Log) Put(key, contentType string, body []byte) error {
	return l.PutEntry(key, contentType, body, 0, time.Time{})
}

// PutEntry implements MetaPutter. The write path is a single segment append:
// this is the log's whole advantage over the file-per-entry backend's
// create + write + rename.
func (l *Log) PutEntry(key, contentType string, body []byte, execTime time.Duration, expires time.Time) error {
	if contentType == tombstoneContentType {
		return fmt.Errorf("store: content type %q is reserved", contentType)
	}
	if err := l.writeGate(); err != nil {
		l.putFailures.Add(1)
		return err
	}
	rec := encodeEntry(key, contentType, body, execTime, expires)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	loc, err := l.appendLocked(rec)
	if err != nil {
		l.mu.Unlock()
		l.noteWriteError(err)
		return err
	}
	if old, ok := l.index[key]; ok {
		l.deadBytes += int64(old.n)
	}
	l.index[key] = loc
	compact := l.shouldCompactLocked()
	if compact {
		l.compacting = true
		l.compactWG.Add(1)
	}
	l.mu.Unlock()
	l.noteWriteOK()
	if compact {
		go l.compact()
	}
	return nil
}

// Get implements Store. The record is checksum-verified on every read; an
// entry that fails verification is dropped from the index and reported as an
// error, so a corrupt body is never served. A read that races compaction
// (its segment deleted between lookup and read) retries against the updated
// index.
func (l *Log) Get(key string) (string, []byte, error) {
	for attempt := 0; ; attempt++ {
		l.mu.RLock()
		closed := l.closed
		loc, ok := l.index[key]
		l.mu.RUnlock()
		if closed {
			return "", nil, ErrClosed
		}
		if !ok {
			return "", nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		data, err := l.readRecord(loc)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) && attempt < 4 {
				continue // compaction deleted the segment under us; re-look up
			}
			return "", nil, fmt.Errorf("store: reading %s@%d: %w", segmentFileName(loc.seg), loc.off, err)
		}
		meta, body, err := decodeEntry(data)
		if err == nil && meta.Key != key {
			err = fmt.Errorf("%w: record holds key %q", ErrCorrupt, meta.Key)
		}
		if err == nil {
			cp := make([]byte, len(body))
			copy(cp, body)
			return meta.ContentType, cp, nil
		}
		// Verification failed. If compaction moved the entry meanwhile, the
		// stale bytes we read say nothing about the live record — retry.
		l.mu.Lock()
		stale := l.index[key] != loc
		if !stale {
			delete(l.index, key)
			l.deadBytes += int64(loc.n)
		}
		l.mu.Unlock()
		if stale && attempt < 4 {
			continue
		}
		l.quarantined.Add(1)
		return "", nil, fmt.Errorf("store: %s@%d: %w", segmentFileName(loc.seg), loc.off, err)
	}
}

// readRecord fetches loc's bytes from its segment.
func (l *Log) readRecord(loc recordLoc) ([]byte, error) {
	r, err := openRead(l.fs, l.segmentPath(loc.seg))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, loc.n)
	if _, err := r.ReadAt(buf, loc.off); err != nil {
		return nil, err
	}
	return buf, nil
}

// Delete implements Store: the key leaves the index immediately and a
// tombstone record makes the deletion durable. If the store is degraded the
// tombstone is skipped — the entry may resurrect on the next open, which is
// the same wrinkle as Disk losing an unsynced delete — rather than failing
// an eviction that must proceed.
func (l *Log) Delete(key string) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	loc, ok := l.index[key]
	if !ok {
		l.mu.Unlock()
		return nil
	}
	delete(l.index, key)
	l.deadBytes += int64(loc.n)
	l.mu.Unlock()

	if err := l.writeGate(); err != nil {
		return nil
	}
	rec := encodeEntry(key, tombstoneContentType, nil, 0, time.Time{})
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	_, err := l.appendLocked(rec)
	if err == nil {
		l.deadBytes += int64(len(rec)) // a tombstone is dead on arrival
	}
	compact := err == nil && l.shouldCompactLocked()
	if compact {
		l.compacting = true
		l.compactWG.Add(1)
	}
	l.mu.Unlock()
	if err != nil {
		l.noteWriteError(err)
		return nil
	}
	l.noteWriteOK()
	if compact {
		go l.compact()
	}
	return nil
}

// shouldCompactLocked reports whether dead bytes justify a compaction.
// Callers hold l.mu.
func (l *Log) shouldCompactLocked() bool {
	return !l.compacting && !l.closed &&
		l.deadBytes >= l.compactMin &&
		float64(l.deadBytes) >= l.compactFrac*float64(l.totalBytes)
}

// compact rewrites the live set into a fresh segment and deletes the old
// ones. It runs on its own goroutine with l.compacting held true.
//
// Ordering is what makes a crash at any point safe: the output segment gets
// a sequence number *above* every old segment but *below* the new active
// segment, so replay order (old, then rewrite, then new appends) always
// converges on the same live set whether or not the old segments were
// deleted before the crash.
func (l *Log) compact() {
	defer l.compactWG.Done()
	defer func() {
		l.mu.Lock()
		l.compacting = false
		l.mu.Unlock()
	}()

	// Freeze: the rewrite gets the next sequence number, appends move to a
	// segment above it, and everything below is "old" and now immutable.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.nextSeq++
	outSeq := l.nextSeq
	// The next append rotates onto a segment numbered above outSeq.
	snapshot := make(map[string]recordLoc, len(l.index))
	for k, loc := range l.index {
		snapshot[k] = loc
	}
	oldSeqs := make([]int64, 0, len(l.segBytes))
	for seq := range l.segBytes {
		if seq < outSeq {
			oldSeqs = append(oldSeqs, seq)
		}
	}
	l.mu.Unlock()

	// Read the live records out of the old segments, grouped by segment so
	// each old segment is read once.
	bySeg := make(map[int64][]recordLoc)
	keyAt := make(map[recordLoc]string)
	for key, loc := range snapshot {
		bySeg[loc.seg] = append(bySeg[loc.seg], loc)
		keyAt[loc] = key
	}
	var out []byte
	moved := make(map[string]recordLoc)
	segs := make([]int64, 0, len(bySeg))
	for seg := range bySeg {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for _, seg := range segs {
		data, err := l.fs.ReadFile(l.segmentPath(seg))
		if err != nil {
			// Can't read an old segment: abandon this compaction; the live
			// index still points at whatever is readable.
			return
		}
		locs := bySeg[seg]
		sort.Slice(locs, func(i, j int) bool { return locs[i].off < locs[j].off })
		for _, loc := range locs {
			if loc.off+int64(loc.n) > int64(len(data)) {
				continue
			}
			rec := data[loc.off : loc.off+int64(loc.n)]
			if _, _, _, err := decodeRecord(rec); err != nil {
				// Rot found during compaction: don't carry it forward. The
				// key stays pointing at the damaged record and the next Get
				// reports and drops it.
				continue
			}
			moved[keyAt[loc]] = recordLoc{seg: outSeq, off: int64(len(out)), n: loc.n}
			out = append(out, rec...)
		}
	}

	// Publish the rewrite atomically, then swing the index and only then
	// delete the old segments (a Get racing the deletion retries and finds
	// the updated location).
	outPath := l.segmentPath(outSeq)
	if err := l.truncateSegment(outPath, out); err != nil {
		return
	}
	l.mu.Lock()
	for key, newLoc := range moved {
		if cur, ok := l.index[key]; ok && cur == snapshot[key] {
			l.index[key] = newLoc
		}
	}
	// Old segments leave the accounting; the rewrite enters it. Everything
	// in the old segments that was not rewritten was dead and is now gone.
	var oldBytes int64
	for _, seq := range oldSeqs {
		oldBytes += l.segBytes[seq]
		delete(l.segBytes, seq)
	}
	l.segBytes[outSeq] = int64(len(out))
	l.totalBytes -= oldBytes - int64(len(out))
	l.deadBytes -= oldBytes - int64(len(out))
	if l.deadBytes < 0 {
		l.deadBytes = 0
	}
	l.mu.Unlock()

	for _, seq := range oldSeqs {
		l.fs.Remove(l.segmentPath(seq))
	}
}

// StorageStatus implements the health reporter used by /swala-status and
// the wire stats.
func (l *Log) StorageStatus() StorageStatus { return l.status() }

// Len implements Store.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.index)
}

// Close implements Store. Segments stay on disk so the next OpenLog recovers
// them; use Destroy to delete them.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.index = make(map[string]recordLoc)
	l.mu.Unlock()
	l.compactWG.Wait()
	return nil
}

// Destroy closes the store and removes its directory and every file in it.
func (l *Log) Destroy() error {
	l.Close()
	return l.fs.RemoveAll(l.dir)
}
