package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

// fillDisk stores n entries with meta-data and returns the store.
func fillDisk(t *testing.T, dir string, n int) *Disk {
	t.Helper()
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("GET /cgi-bin/q?i=%d", i)
		body := []byte(fmt.Sprintf("body-%d", i))
		if err := d.PutEntry(key, "text/html", body, time.Duration(i)*time.Millisecond, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestOpenDiskRecoversEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d := fillDisk(t, dir, 5)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rep, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	if len(rep.Recovered) != 5 || d2.Len() != 5 {
		t.Fatalf("recovered %d entries (Len %d), want 5", len(rep.Recovered), d2.Len())
	}
	// Recovery order follows write order (sequence numbers).
	for i, re := range rep.Recovered {
		want := fmt.Sprintf("GET /cgi-bin/q?i=%d", i)
		if re.Key != want {
			t.Fatalf("recovered[%d].Key = %q, want %q", i, re.Key, want)
		}
		if re.ExecTime != time.Duration(i)*time.Millisecond {
			t.Fatalf("recovered[%d].ExecTime = %v", i, re.ExecTime)
		}
		if re.Size != int64(len(fmt.Sprintf("body-%d", i))) {
			t.Fatalf("recovered[%d].Size = %d", i, re.Size)
		}
	}
	for i := 0; i < 5; i++ {
		ct, body, err := d2.Get(fmt.Sprintf("GET /cgi-bin/q?i=%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "text/html" || string(body) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("entry %d: got (%q, %q)", i, ct, body)
		}
	}
	if st := d2.StorageStatus(); !st.Persistent || st.Recovered != 5 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}
}

func TestOpenDiskDropsExpiredEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PutEntry("live", "t", []byte("x"), 0, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := d.PutEntry("stale", "t", []byte("y"), 0, time.Now().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2, rep, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	if len(rep.Recovered) != 1 || rep.Recovered[0].Key != "live" || rep.Expired != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

// corruptionFixtures plants the satellite-task fixture set in dir: a torn
// write (valid prefix of an encoding), a truncated header, a bad checksum,
// and an empty file, plus an orphaned .tmp. It returns how many corrupt
// entry files were planted.
func corruptionFixtures(t *testing.T, dir string) int {
	t.Helper()
	valid := encodeEntry("GET /cgi-bin/q?fixture=1", "text/html", []byte("fixture body bytes"), time.Millisecond, time.Time{})
	writeRaw := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeRaw("entry-9001.cache", valid[:len(valid)/2]) // torn write
	writeRaw("entry-9002.cache", valid[:7])            // truncated header
	bad := append([]byte(nil), valid...)
	bad[len(bad)-1] ^= 0xff
	writeRaw("entry-9003.cache", bad)            // bad checksum
	writeRaw("entry-9004.cache", nil)            // empty file
	writeRaw("entry-9005.cache.tmp", valid[:10]) // orphaned temp
	return 4
}

func TestOpenDiskQuarantinesCorruptFixtures(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d := fillDisk(t, dir, 3)
	d.Close()
	corrupt := corruptionFixtures(t, dir)

	d2, rep, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	if len(rep.Recovered) != 3 {
		t.Fatalf("recovered %d, want 3 (no corrupt file may be recovered)", len(rep.Recovered))
	}
	if rep.Quarantined != corrupt {
		t.Fatalf("quarantined %d, want %d", rep.Quarantined, corrupt)
	}
	if rep.OrphansSwept != 1 {
		t.Fatalf("orphans swept %d, want 1", rep.OrphansSwept)
	}
	// Quarantined files are moved aside, not deleted, and never served.
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineSubdir))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) != corrupt {
		t.Fatalf("quarantine/ holds %d files, want %d", len(qfiles), corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, "entry-9005.cache.tmp")); !os.IsNotExist(err) {
		t.Fatal("orphaned .tmp survived the sweep")
	}
	if st := d2.StorageStatus(); st.Quarantined != uint64(corrupt) || st.OrphansSwept != 1 {
		t.Fatalf("status = %+v", st)
	}
}

// TestOpenDiskAfterCrashBeforeRename simulates a kill between writing the
// temp file and the publish rename: every completed (published) entry is
// recovered; the in-flight one is swept, not recovered, not quarantined.
func TestOpenDiskAfterCrashBeforeRename(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := NewFaultFS(nil)
	d, _, err := OpenDisk(dir, DiskOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Put(fmt.Sprintf("k%d", i), "t", []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	ffs.SetCrashed(true)
	if err := d.Put("k-inflight", "t", []byte("never published")); err == nil {
		t.Fatal("Put through a crashed rename succeeded")
	}
	// The crash left the completed temp file behind (Remove was suppressed).
	names, _ := os.ReadDir(dir)
	tmps := 0
	for _, de := range names {
		if filepath.Ext(de.Name()) == ".tmp" {
			tmps++
		}
	}
	if tmps != 1 {
		t.Fatalf("tmp debris after crash = %d, want 1", tmps)
	}

	d2, rep, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Destroy()
	if len(rep.Recovered) != 4 || rep.Quarantined != 0 || rep.OrphansSwept != 1 {
		t.Fatalf("report = %+v, want 4 recovered, 0 quarantined, 1 orphan", rep)
	}
	if _, _, err := d2.Get("k-inflight"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unpublished entry visible after recovery: %v", err)
	}
}

// TestOpenDiskKeepsNewestDuplicate covers a crash between the rename that
// published an overwrite and the removal of the key's previous file.
func TestOpenDiskKeepsNewestDuplicate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	old := encodeEntry("k", "t", []byte("old"), 0, time.Time{})
	newer := encodeEntry("k", "t", []byte("new"), 0, time.Time{})
	os.WriteFile(filepath.Join(dir, "entry-1.cache"), old, 0o644)
	os.WriteFile(filepath.Join(dir, "entry-2.cache"), newer, 0o644)

	d, rep, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	if len(rep.Recovered) != 1 || rep.Duplicates != 1 {
		t.Fatalf("report = %+v, want 1 recovered + 1 duplicate", rep)
	}
	if _, body, err := d.Get("k"); err != nil || string(body) != "new" {
		t.Fatalf("Get = (%q, %v), want the newer write", body, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "entry-1.cache")); !os.IsNotExist(err) {
		t.Fatal("superseded duplicate file survived recovery")
	}
}

// TestDiskGetQuarantinesRuntimeCorruption covers bit rot after open: the
// corrupt body is never served; the file is quarantined and the key dropped.
func TestDiskGetQuarantinesRuntimeCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d := fillDisk(t, dir, 1)
	defer d.Destroy()
	key := "GET /cgi-bin/q?i=0"

	names, _ := os.ReadDir(dir)
	var path string
	for _, de := range names {
		if !de.IsDir() {
			path = filepath.Join(dir, de.Name())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := d.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry = %v, want ErrCorrupt", err)
	}
	if _, _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound (entry dropped)", err)
	}
	if d.StorageStatus().Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", d.StorageStatus().Quarantined)
	}
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineSubdir))
	if err != nil || len(qfiles) != 1 {
		t.Fatalf("quarantine/ = %v files, err %v; want 1", len(qfiles), err)
	}
}

// TestDiskPutConcurrentSameKeyNoLeak is the -race regression for the seed
// bug where two concurrent Puts on one key could leak the loser's file.
func TestDiskPutConcurrentSameKeyNoLeak(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if err := d.Put("hot", "t", []byte(fmt.Sprintf("writer-%d-%d", w, i))); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("files on disk after concurrent Puts = %d, want exactly 1 (no leaked losers)", len(files))
	}
	if _, body, err := d.Get("hot"); err != nil || len(body) == 0 {
		t.Fatalf("Get after concurrent Puts: %q, %v", body, err)
	}
}

// TestWriteFileAtomicNoOrphanOnError is the regression for the seed bug
// where a failed write left its .tmp file behind.
func TestWriteFileAtomicNoOrphanOnError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := NewFaultFS(nil)
	d, _, err := OpenDisk(dir, DiskOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	ffs.TornWrite(10, syscall.EIO)
	if err := d.Put("k", "t", []byte("a body that is longer than ten bytes")); err == nil {
		t.Fatal("torn write reported success")
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 0 {
		t.Fatalf("%d files left after failed write, want 0 (tmp must be removed)", len(files))
	}
}

func TestDiskDegradedModeAndReprobe(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := NewFaultFS(nil)
	d, _, err := OpenDisk(dir, DiskOptions{FS: ffs, ReprobeInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()

	if err := d.Put("before", "t", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Disk full: the failing Put degrades the store; reads keep working.
	ffs.FailWrites(syscall.ENOSPC)
	if err := d.Put("k1", "t", []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put on full disk = %v, want ENOSPC", err)
	}
	st := d.StorageStatus()
	if !st.Degraded || st.PutFailures != 1 || st.LastError == "" {
		t.Fatalf("status after fault = %+v", st)
	}
	if _, body, err := d.Get("before"); err != nil || string(body) != "x" {
		t.Fatalf("read in degraded mode: %q, %v", body, err)
	}
	// Within the reprobe window, Puts fail fast with ErrDegraded — no write
	// is attempted.
	writesBefore := ffs.Writes()
	if err := d.Put("k2", "t", []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put in degraded window = %v, want ErrDegraded", err)
	}
	if ffs.Writes() != writesBefore {
		t.Fatal("degraded-window Put attempted a write")
	}

	// After the interval a Put becomes a probe; with the fault healed it
	// succeeds and lifts the mode.
	ffs.FailWrites(nil)
	time.Sleep(40 * time.Millisecond)
	if err := d.Put("k3", "t", []byte("x")); err != nil {
		t.Fatalf("probe Put after heal: %v", err)
	}
	if st := d.StorageStatus(); st.Degraded {
		t.Fatalf("still degraded after successful probe: %+v", st)
	}
}

func TestDiskFailNthWrite(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := NewFaultFS(nil)
	d, _, err := OpenDisk(dir, DiskOptions{FS: ffs, ReprobeInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	ffs.FailNthWrite(3, syscall.EIO)
	var failed int
	for i := 0; i < 5; i++ {
		if err := d.Put(fmt.Sprintf("k%d", i), "t", []byte("x")); err != nil {
			failed++
			if !errors.Is(err, syscall.EIO) {
				t.Fatalf("Put %d failed with %v, want EIO", i, err)
			}
			time.Sleep(2 * time.Millisecond) // let the next Put probe
		}
	}
	if failed != 1 {
		t.Fatalf("failed Puts = %d, want exactly 1 (the 3rd write)", failed)
	}
}

func TestDiskReadFaultSurfacesError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ffs := NewFaultFS(nil)
	d, _, err := OpenDisk(dir, DiskOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	if err := d.Put("k", "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ffs.FailReads(syscall.EIO)
	if _, _, err := d.Get("k"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Get with read fault = %v, want EIO", err)
	}
	// A read fault is transient, not corruption: the entry survives.
	ffs.FailReads(nil)
	if _, body, err := d.Get("k"); err != nil || string(body) != "x" {
		t.Fatalf("Get after heal = %q, %v", body, err)
	}
}

func TestDiskFsyncAlways(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	d, _, err := OpenDisk(dir, DiskOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	if err := d.Put("k", "t", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if _, body, err := d.Get("k"); err != nil || string(body) != "durable" {
		t.Fatalf("Get = %q, %v", body, err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	if p, err := ParseFsyncPolicy("always"); err != nil || p != FsyncAlways {
		t.Fatalf("always -> %v, %v", p, err)
	}
	if p, err := ParseFsyncPolicy("never"); err != nil || p != FsyncNever {
		t.Fatalf("never -> %v, %v", p, err)
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestStatusOfUnwrapsTiered(t *testing.T) {
	d, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Destroy()
	tiered := NewTiered(d, 1<<20)
	st, ok := StatusOf(tiered)
	if !ok || !st.Persistent {
		t.Fatalf("StatusOf(tiered) = %+v, %v", st, ok)
	}
	if _, ok := StatusOf(NewMemory()); ok {
		t.Fatal("memory store reported storage status")
	}
	if _, ok := StatusOf(NewTiered(NewMemory(), 1<<20)); ok {
		t.Fatal("tiered memory store reported storage status")
	}
}
