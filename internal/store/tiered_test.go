package store

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestTieredWriteThroughAndReadBack(t *testing.T) {
	backing := NewMemory()
	ts := NewTiered(backing, 1<<20)
	defer ts.Close()

	if err := ts.Put("k", "text/html", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	// The body must be in the backing store (write-through)...
	if ct, body, err := backing.Get("k"); err != nil || ct != "text/html" || string(body) != "hello" {
		t.Fatalf("backing.Get = %q, %q, %v", ct, body, err)
	}
	// ...and the read must come from memory.
	ct, body, err := ts.Get("k")
	if err != nil || ct != "text/html" || string(body) != "hello" {
		t.Fatalf("Get = %q, %q, %v", ct, body, err)
	}
	if _, _, hits, _ := ts.MemStats(); hits != 1 {
		t.Fatalf("mem hits = %d, want 1", hits)
	}
}

func TestTieredGetPromotesFromBacking(t *testing.T) {
	backing := NewMemory()
	if err := backing.Put("k", "text/plain", []byte("preloaded")); err != nil {
		t.Fatal(err)
	}
	ts := NewTiered(backing, 1<<20)
	defer ts.Close()

	// First Get falls through; second is served from memory.
	for i := 0; i < 2; i++ {
		if _, body, err := ts.Get("k"); err != nil || string(body) != "preloaded" {
			t.Fatalf("Get #%d = %q, %v", i, body, err)
		}
	}
	entries, _, hits, misses := ts.MemStats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("mem stats = %d entries, %d hits, %d misses; want 1/1/1", entries, hits, misses)
	}
}

func TestTieredDeleteInvalidatesMemory(t *testing.T) {
	ts := NewTiered(NewMemory(), 1<<20)
	defer ts.Close()
	if err := ts.Put("k", "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := ts.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ts.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
	}
	if entries, bytes, _, _ := ts.MemStats(); entries != 0 || bytes != 0 {
		t.Fatalf("memory tier not empty after delete: %d entries, %d bytes", entries, bytes)
	}
}

func TestTieredLRUEvictionStaysWithinBudget(t *testing.T) {
	// Budget of 3 x 100-byte bodies.
	ts := NewTiered(NewMemory(), 300)
	defer ts.Close()
	body := make([]byte, 100)
	for i := 0; i < 5; i++ {
		if err := ts.Put(fmt.Sprintf("k%d", i), "t", body); err != nil {
			t.Fatal(err)
		}
	}
	entries, curBytes, _, _ := ts.MemStats()
	if entries != 3 || curBytes != 300 {
		t.Fatalf("after 5 puts: %d entries, %d bytes resident; want 3, 300", entries, curBytes)
	}
	// k0 and k1 were evicted (LRU); k2..k4 resident. Probe the resident
	// keys first — a miss promotes and would churn the residents.
	_, _, hitsBefore, _ := ts.MemStats()
	for i := 2; i < 5; i++ {
		if _, _, err := ts.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("Get k%d: %v", i, err)
		}
	}
	_, _, hitsAfter, _ := ts.MemStats()
	if got := hitsAfter - hitsBefore; got != 3 {
		t.Fatalf("mem hits for resident keys = %d, want 3 (k2..k4 resident)", got)
	}
	// The evicted keys still come back correctly via the backing store.
	for i := 0; i < 2; i++ {
		if _, _, err := ts.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("Get k%d: %v", i, err)
		}
	}
	if _, _, _, misses := ts.MemStats(); misses != 2 {
		t.Fatalf("mem misses = %d, want 2 (k0, k1 evicted)", misses)
	}
}

func TestTieredLRUOrderRespectsGets(t *testing.T) {
	ts := NewTiered(NewMemory(), 200)
	defer ts.Close()
	body := make([]byte, 100)
	ts.Put("a", "t", body)
	ts.Put("b", "t", body)
	// Touch a so b becomes the LRU victim.
	if _, _, err := ts.Get("a"); err != nil {
		t.Fatal(err)
	}
	ts.Put("c", "t", body) // evicts b
	_, _, hitsBefore, _ := ts.MemStats()
	ts.Get("a")
	ts.Get("c")
	_, _, hitsAfter, _ := ts.MemStats()
	if got := hitsAfter - hitsBefore; got != 2 {
		t.Fatalf("a and c should both be resident; mem hits = %d, want 2", got)
	}
	_, _, _, missesBefore := ts.MemStats()
	ts.Get("b")
	_, _, _, missesAfter := ts.MemStats()
	if missesAfter-missesBefore != 1 {
		t.Fatal("b should have been the LRU eviction victim")
	}
}

func TestTieredOversizedBodyBypassesMemory(t *testing.T) {
	ts := NewTiered(NewMemory(), 64)
	defer ts.Close()
	big := make([]byte, 128)
	if err := ts.Put("big", "t", big); err != nil {
		t.Fatal(err)
	}
	if entries, _, _, _ := ts.MemStats(); entries != 0 {
		t.Fatalf("oversized body resident in memory tier (%d entries)", entries)
	}
	if _, body, err := ts.Get("big"); err != nil || len(body) != 128 {
		t.Fatalf("Get big = %d bytes, %v", len(body), err)
	}
}

func TestTieredReturnedBodyIsStable(t *testing.T) {
	ts := NewTiered(NewMemory(), 1<<20)
	defer ts.Close()
	ts.Put("k", "t", []byte("original"))
	_, body, err := ts.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned slice must not corrupt the resident copy.
	for i := range body {
		body[i] = 'X'
	}
	_, again, err := ts.Get("k")
	if err != nil || !bytes.Equal(again, []byte("original")) {
		t.Fatalf("resident body corrupted: %q, %v", again, err)
	}
}

func TestTieredOverDisk(t *testing.T) {
	disk, err := NewDisk(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTiered(disk, 1<<20)
	defer ts.Close()
	if err := ts.Put("k", "text/html", []byte("on disk and in memory")); err != nil {
		t.Fatal(err)
	}
	if _, body, err := ts.Get("k"); err != nil || string(body) != "on disk and in memory" {
		t.Fatalf("Get = %q, %v", body, err)
	}
	if err := ts.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 0 {
		t.Fatal("delete did not reach the disk store")
	}
}

// failingStore wraps Memory and fails Puts on demand.
type failingStore struct {
	*Memory
	failPuts bool
}

func (f *failingStore) Put(key, contentType string, body []byte) error {
	if f.failPuts {
		return errors.New("backing store: injected put failure")
	}
	return f.Memory.Put(key, contentType, body)
}

// TestTieredPutFailureInvalidatesMemTier is the regression for the bug where
// a failed backing Put left the previous body resident in the memory tier,
// so GetCached served data newer than (or inconsistent with) the backing
// store.
func TestTieredPutFailureInvalidatesMemTier(t *testing.T) {
	backing := &failingStore{Memory: NewMemory()}
	ts := NewTiered(backing, 1<<20)
	defer ts.Close()

	if err := ts.Put("k", "t", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ts.GetCached("k"); !ok {
		t.Fatal("v1 not resident after successful Put")
	}

	backing.failPuts = true
	if err := ts.Put("k", "t", []byte("v2")); err == nil {
		t.Fatal("Put with failing backing store succeeded")
	}
	// The memory tier must not keep serving v1 as if it were current.
	if _, body, ok := ts.GetCached("k"); ok {
		t.Fatalf("mem tier still resident after failed Put (body %q)", body)
	}
	// Get falls through to the backing store's authoritative copy.
	if _, body, err := ts.Get("k"); err != nil || string(body) != "v1" {
		t.Fatalf("Get after failed overwrite = %q, %v; want backing v1", body, err)
	}

	// Same contract for the meta-data path.
	backing.failPuts = true
	if err := ts.PutEntry("k", "t", []byte("v3"), 0, time.Time{}); err == nil {
		t.Fatal("PutEntry with failing backing store succeeded")
	}
	if _, _, ok := ts.GetCached("k"); ok {
		t.Fatal("mem tier resident after failed PutEntry")
	}
}

func TestTieredConcurrent(t *testing.T) {
	ts := NewTiered(NewMemory(), 4096)
	defer ts.Close()
	body := make([]byte, 128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				switch i % 5 {
				case 0:
					if err := ts.Put(key, "t", body); err != nil {
						t.Error(err)
						return
					}
				case 4:
					ts.Delete(key)
				default:
					if _, b, err := ts.Get(key); err == nil && len(b) != len(body) {
						t.Errorf("Get %s: %d bytes", key, len(b))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
