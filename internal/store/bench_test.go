package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkMemoryPutGet(b *testing.B) {
	s := NewMemory()
	defer s.Close()
	body := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%100)
		if err := s.Put(key, "text/html", body); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskPutGet(b *testing.B) {
	s, err := NewDisk(filepath.Join(b.TempDir(), "cache"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%100)
		if err := s.Put(key, "text/html", body); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}
