package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkMemoryPutGet(b *testing.B) {
	s := NewMemory()
	defer s.Close()
	body := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%100)
		if err := s.Put(key, "text/html", body); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiskGetHot measures repeated Gets of a small hot key set straight
// from the disk store: every hit pays an os.ReadFile.
func BenchmarkDiskGetHot(b *testing.B) {
	s, err := NewDisk(filepath.Join(b.TempDir(), "cache"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	benchGetHot(b, s)
}

// BenchmarkTieredDiskGetHot measures the same workload through the memory
// tier: after the first pass every hot key is served from the in-memory LRU.
func BenchmarkTieredDiskGetHot(b *testing.B) {
	disk, err := NewDisk(filepath.Join(b.TempDir(), "cache"))
	if err != nil {
		b.Fatal(err)
	}
	s := NewTiered(disk, 1<<20)
	defer s.Close()
	benchGetHot(b, s)
}

func benchGetHot(b *testing.B, s Store) {
	b.Helper()
	body := make([]byte, 4096)
	const hotKeys = 16
	for i := 0; i < hotKeys; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), "text/html", body); err != nil {
			b.Fatal(err)
		}
	}
	keys := make([]string, hotKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get(keys[i%hotKeys]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskPutGet(b *testing.B) {
	s, err := NewDisk(filepath.Join(b.TempDir(), "cache"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	body := make([]byte, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%100)
		if err := s.Put(key, "text/html", body); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}
