package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// testLogOptions uses tiny thresholds so tests exercise rotation and
// compaction without megabytes of data. Compaction stays effectively off
// unless a test lowers the fraction/min further.
func testLogOptions(fs FS) LogOptions {
	return LogOptions{
		FS:              fs,
		SegmentMaxBytes: 1 << 30, // no rotation unless the test wants it
		CompactMinBytes: 1 << 30, // no compaction unless the test wants it
	}
}

func newTestLog(t *testing.T) (*Log, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

func TestLogPutGetRoundTrip(t *testing.T) {
	l, _ := newTestLog(t)
	if err := l.Put("k1", "text/html", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	ct, body, err := l.Get("k1")
	if err != nil || ct != "text/html" || string(body) != "hello" {
		t.Fatalf("Get = %q, %q, %v", ct, body, err)
	}
	if _, _, err := l.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent err = %v", err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestLogOverwriteAndDelete(t *testing.T) {
	l, _ := newTestLog(t)
	l.Put("k", "a/a", []byte("one"))
	l.Put("k", "b/b", []byte("two"))
	ct, body, err := l.Get("k")
	if err != nil || ct != "b/b" || string(body) != "two" {
		t.Fatalf("after overwrite Get = %q, %q, %v", ct, body, err)
	}
	if err := l.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, _, err := l.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete err = %v", err)
	}
	if err := l.Delete("k"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func TestLogRecoverAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	exp := time.Now().Add(time.Hour)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := l.PutEntry(key, "text/plain", []byte("body-"+key), time.Duration(i)*time.Millisecond, exp); err != nil {
			t.Fatalf("PutEntry: %v", err)
		}
	}
	l.Delete("k3")
	l.Close()

	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(rep.Recovered) != 9 {
		t.Fatalf("Recovered = %d entries, want 9 (k3 tombstoned)", len(rep.Recovered))
	}
	for _, e := range rep.Recovered {
		if e.Key == "k3" {
			t.Fatal("tombstoned key recovered")
		}
		if e.ContentType != "text/plain" {
			t.Fatalf("recovered content type = %q", e.ContentType)
		}
	}
	ct, body, err := l2.Get("k7")
	if err != nil || ct != "text/plain" || string(body) != "body-k7" {
		t.Fatalf("Get after recovery = %q, %q, %v", ct, body, err)
	}
	if _, _, err := l2.Get("k3"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
}

// TestLogPutIsOneAppend pins the acceptance criterion that a warm miss costs
// exactly one data write on the log's write path — no temp file, no rename
// payload, no second write.
func TestLogPutIsOneAppend(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(ffs))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	l.Put("warmup", "t/t", []byte("x")) // first Put also creates the segment
	before := ffs.Writes()
	for i := 0; i < 5; i++ {
		if err := l.Put(fmt.Sprintf("k%d", i), "t/t", []byte(strings.Repeat("b", 100))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := ffs.Writes() - before; got != 5 {
		t.Fatalf("5 Puts cost %d writes, want exactly 5 (one append each)", got)
	}
}

// TestLogTornFinalRecord: a crash mid-append leaves a partial record at the
// segment tail; recovery must truncate it, keep everything before it, and
// not count it as corruption.
func TestLogTornFinalRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.Put("keep1", "t/t", []byte("alpha"))
	l.Put("keep2", "t/t", []byte("beta"))
	l.Put("torn", "t/t", []byte("this record will be cut in half"))
	l.Close()

	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last record roughly in half.
	lastLen := len(encodeEntry("torn", "t/t", []byte("this record will be cut in half"), 0, time.Time{}))
	if err := os.WriteFile(path, data[:len(data)-lastLen/2], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.Quarantined != 0 {
		t.Fatalf("Quarantined = %d, want 0 (a torn tail is not corruption)", rep.Quarantined)
	}
	if rep.OrphansSwept == 0 {
		t.Fatal("torn tail not reported as swept")
	}
	if len(rep.Recovered) != 2 {
		t.Fatalf("Recovered = %d, want 2", len(rep.Recovered))
	}
	if _, _, err := l2.Get("keep1"); err != nil {
		t.Fatalf("keep1 lost: %v", err)
	}
	if _, _, err := l2.Get("torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record served: %v", err)
	}
	// The truncated segment must now be clean: a third open sees no damage.
	l2.Close()
	l3, rep3, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	if rep3.Quarantined != 0 || rep3.OrphansSwept != 0 {
		t.Fatalf("third open rep = %+v, want clean", rep3)
	}
}

// TestLogEmptyTrailingSegment: a rotation (or open) followed by a crash
// before any append leaves a zero-byte segment; recovery sweeps it and a
// fresh open starts clean.
func TestLogEmptyTrailingSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.Put("k", "t/t", []byte("v"))
	l.Close()
	// Simulate the crash-after-rotate: an empty segment above the real one.
	if err := os.WriteFile(filepath.Join(dir, segmentFileName(99)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.OrphansSwept != 1 {
		t.Fatalf("OrphansSwept = %d, want 1 (the empty segment)", rep.OrphansSwept)
	}
	if len(rep.Recovered) != 1 {
		t.Fatalf("Recovered = %d, want 1", len(rep.Recovered))
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(99))); !os.IsNotExist(err) {
		t.Fatal("empty segment not swept from disk")
	}
	// New appends must go above the swept segment's number, not reuse it.
	if err := l2.Put("k2", "t/t", []byte("v2")); err != nil {
		t.Fatalf("Put after sweep: %v", err)
	}
	segs := segmentFiles(t, dir)
	sort.Strings(segs)
	for _, s := range segs {
		seq, _ := parseSegmentFileName(s)
		if seq > 99 {
			return
		}
	}
	t.Fatalf("no segment above 99 after append; segments = %v", segs)
}

// TestLogDuplicateKeyAcrossSegments: with one key written into several
// segments (rotation between overwrites), recovery must keep the newest.
func TestLogDuplicateKeyAcrossSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	opts := testLogOptions(nil)
	opts.SegmentMaxBytes = 1 // every append rotates onto a fresh segment
	l, _, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Put("dup", "t/t", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	l.Put("other", "t/t", []byte("solo"))
	l.Close()
	if segs := segmentFiles(t, dir); len(segs) < 4 {
		t.Fatalf("segments = %v, want one per append", segs)
	}

	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.Duplicates != 3 {
		t.Fatalf("Duplicates = %d, want 3 superseded copies", rep.Duplicates)
	}
	if len(rep.Recovered) != 2 {
		t.Fatalf("Recovered = %d, want 2", len(rep.Recovered))
	}
	_, body, err := l2.Get("dup")
	if err != nil || string(body) != "version-3" {
		t.Fatalf("Get dup = %q, %v, want newest version-3", body, err)
	}
}

// TestLogDamagedRecordQuarantinedOnRecovery: a flipped bit inside one record
// must quarantine exactly that record; its neighbors survive.
func TestLogDamagedRecordQuarantined(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.Put("before", "t/t", []byte(strings.Repeat("a", 200)))
	l.Put("victim", "t/t", []byte(strings.Repeat("b", 200)))
	l.Put("after", "t/t", []byte(strings.Repeat("c", 200)))
	loc := l.index["victim"]
	l.Close()

	path := filepath.Join(dir, segmentFileName(loc.seg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[loc.off+int64(loc.n)-10] ^= 0x40 // flip a bit inside victim's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", rep.Quarantined)
	}
	if len(rep.Recovered) != 2 {
		t.Fatalf("Recovered = %d, want 2", len(rep.Recovered))
	}
	if _, _, err := l2.Get("victim"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("damaged record still indexed: %v", err)
	}
	for _, k := range []string{"before", "after"} {
		if _, _, err := l2.Get(k); err != nil {
			t.Fatalf("neighbor %s lost: %v", k, err)
		}
	}
}

// TestLogBitRotCaughtAtRead: corruption that develops after recovery is
// detected by the per-read checksum; the corrupt body is never served.
func TestLogBitRotCaughtAtRead(t *testing.T) {
	l, dir := newTestLog(t)
	l.Put("rot", "t/t", []byte(strings.Repeat("x", 500)))
	loc := l.index["rot"]
	path := filepath.Join(dir, segmentFileName(loc.seg))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[loc.off+50] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Get("rot"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get err = %v, want ErrCorrupt", err)
	}
	if _, _, err := l.Get("rot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get err = %v, want ErrNotFound (dropped)", err)
	}
	if st := l.StorageStatus(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
}

// TestLogCompactionReclaimsDeadBytes: overwrite churn triggers compaction,
// which shrinks disk usage and keeps every live entry readable.
func TestLogCompactionReclaims(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	opts := LogOptions{
		SegmentMaxBytes: 4 << 10,
		CompactMinBytes: 8 << 10,
		CompactFraction: 0.5,
	}
	l, _, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	body := []byte(strings.Repeat("z", 512))
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			if err := l.Put(fmt.Sprintf("k%d", i), "t/t", body); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
	}
	l.compactWG.Wait()
	l.mu.RLock()
	dead, total := l.deadBytes, l.totalBytes
	l.mu.RUnlock()
	if total > 100<<10 {
		t.Fatalf("totalBytes = %d after compaction, want well under the ~80 KiB written", total)
	}
	if dead > total {
		t.Fatalf("deadBytes %d > totalBytes %d", dead, total)
	}
	for i := 0; i < 8; i++ {
		_, got, err := l.Get(fmt.Sprintf("k%d", i))
		if err != nil || string(got) != string(body) {
			t.Fatalf("k%d after compaction: %v", i, err)
		}
	}
	// Live set survives a restart of the compacted store.
	l.Close()
	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if len(rep.Recovered) != 8 {
		t.Fatalf("Recovered = %d, want 8", len(rep.Recovered))
	}
}

// TestLogCompactionRacesGet hammers Get while overwrite churn drives
// compactions: no read may fail or observe a stale body version mix. Run
// with -race.
func TestLogCompactionRacesGet(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	opts := LogOptions{
		SegmentMaxBytes: 2 << 10,
		CompactMinBytes: 4 << 10,
		CompactFraction: 0.3,
	}
	l, _, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	const keys = 4
	body := strings.Repeat("y", 256)
	for i := 0; i < keys; i++ {
		l.Put(fmt.Sprintf("k%d", i), "t/t", []byte(body))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: constant overwrite churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Put(fmt.Sprintf("k%d", i%keys), "t/t", []byte(body)); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers racing the compactions
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < keys; i++ {
					_, got, err := l.Get(fmt.Sprintf("k%d", i))
					if err != nil {
						t.Errorf("Get: %v", err)
						return
					}
					if string(got) != body {
						t.Errorf("Get returned wrong body (%d bytes)", len(got))
						return
					}
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestLogDegradedMode: append failures flip the store read-only; reads keep
// working; a healed disk lifts the mode via the probe write.
func TestLogDegradedMode(t *testing.T) {
	ffs := NewFaultFS(nil)
	dir := filepath.Join(t.TempDir(), "cache")
	opts := testLogOptions(ffs)
	opts.ReprobeInterval = time.Millisecond
	l, _, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	l.Put("stable", "t/t", []byte("ok"))

	ffs.FailWrites(errors.New("disk full"))
	if err := l.Put("fails", "t/t", []byte("x")); err == nil {
		t.Fatal("Put succeeded during write fault")
	}
	if st := l.StorageStatus(); !st.Degraded {
		t.Fatal("not degraded after write failure")
	}
	if _, _, err := l.Get("stable"); err != nil {
		t.Fatalf("read during degraded mode: %v", err)
	}
	ffs.FailWrites(nil)
	time.Sleep(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := l.Put("probe", "t/t", []byte("y"))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never recovered: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := l.StorageStatus(); st.Degraded {
		t.Fatal("still degraded after successful probe")
	}
	if _, _, err := l.Get("probe"); err != nil {
		t.Fatalf("probe entry unreadable: %v", err)
	}
}

// TestLogExpiredEntriesDropped: recovery discards entries past their TTL.
func TestLogExpiredDropped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	l, _, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.PutEntry("fresh", "t/t", []byte("a"), 0, time.Now().Add(time.Hour))
	l.PutEntry("stale", "t/t", []byte("b"), 0, time.Now().Add(-time.Second))
	l.Close()
	l2, rep, err := OpenLog(dir, testLogOptions(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rep.Expired != 1 || len(rep.Recovered) != 1 || rep.Recovered[0].Key != "fresh" {
		t.Fatalf("rep = %+v, want 1 expired, fresh recovered", rep)
	}
}

// segmentFiles lists the segment files under dir.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	listing, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range listing {
		if _, ok := parseSegmentFileName(de.Name()); ok {
			out = append(out, de.Name())
		}
	}
	return out
}
