package replctl

import (
	"sort"
	"testing"

	"repro/internal/stats"
)

func plan(c *Controller, hot []stats.KeyRate, succ []uint32) []Action {
	return c.Plan(hot,
		func(string) bool { return true },
		func(string) []uint32 { return succ })
}

func pushesTo(acts []Action, key string) []uint32 {
	var out []uint32
	for _, a := range acts {
		if a.Key == key && !a.Retire {
			out = append(out, a.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func retiresTo(acts []Action, key string) []uint32 {
	var out []uint32
	for _, a := range acts {
		if a.Key == key && a.Retire {
			out = append(out, a.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestPlanThresholdAndLeaseRefresh(t *testing.T) {
	c := New(Config{HotRate: 10, Replicas: 2})

	// Below threshold: nothing replicates.
	if acts := plan(c, []stats.KeyRate{{Key: "a", Rate: 5}}, []uint32{2, 3}); len(acts) != 0 {
		t.Fatalf("below-threshold actions = %+v", acts)
	}
	// Above: push to the first Replicas successors.
	acts := plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3, 4})
	if got := pushesTo(acts, "a"); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("pushes = %v, want [2 3]", got)
	}
	if c.Replicated() != 1 {
		t.Fatalf("Replicated = %d", c.Replicated())
	}
	// Still hot next tick: pushes re-emitted as lease renewals.
	acts = plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3, 4})
	if got := pushesTo(acts, "a"); len(got) != 2 {
		t.Fatalf("renewal pushes = %v", got)
	}
}

func TestPlanHysteresisAndRetire(t *testing.T) {
	c := New(Config{HotRate: 10, Hysteresis: 0.5, Replicas: 2})
	plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3})

	// Inside the hysteresis band (>= 5): stays replicated, keeps renewing.
	acts := plan(c, []stats.KeyRate{{Key: "a", Rate: 7}}, []uint32{2, 3})
	if got := pushesTo(acts, "a"); len(got) != 2 {
		t.Fatalf("in-band pushes = %v", got)
	}
	// Below the retire floor: explicit retires to every holder.
	acts = plan(c, []stats.KeyRate{{Key: "a", Rate: 1}}, []uint32{2, 3})
	if got := retiresTo(acts, "a"); len(got) != 2 {
		t.Fatalf("retires = %v, want both holders", got)
	}
	if c.Replicated() != 0 {
		t.Fatalf("Replicated after retire = %d", c.Replicated())
	}
	// Vanished from the tracker entirely: same retirement.
	plan(c, []stats.KeyRate{{Key: "b", Rate: 20}}, []uint32{2, 3})
	acts = plan(c, nil, []uint32{2, 3})
	if got := retiresTo(acts, "b"); len(got) != 2 {
		t.Fatalf("vanished-key retires = %v", got)
	}
}

func TestPlanSuccessorChangeRetiresOldHolder(t *testing.T) {
	c := New(Config{HotRate: 10, Replicas: 2})
	plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3})
	// Ring change swaps successor 3 for 4: retire 3, push 2 and 4.
	acts := plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 4})
	if got := retiresTo(acts, "a"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("retires = %v, want [3]", got)
	}
	if got := pushesTo(acts, "a"); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("pushes = %v, want [2 4]", got)
	}
}

func TestPlanOwnershipLossDropsSilently(t *testing.T) {
	c := New(Config{HotRate: 10, Replicas: 2})
	plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3})
	// The ring moved the key's home: no retires (stale holders age out via
	// lease), just forget.
	acts := c.Plan([]stats.KeyRate{{Key: "a", Rate: 20}},
		func(string) bool { return false },
		func(string) []uint32 { return []uint32{2, 3} })
	if len(acts) != 0 {
		t.Fatalf("actions after ownership loss = %+v", acts)
	}
	if c.Replicated() != 0 {
		t.Fatalf("Replicated = %d", c.Replicated())
	}
}

func TestPlanMaxKeysBudget(t *testing.T) {
	c := New(Config{HotRate: 10, Replicas: 1, MaxKeys: 2})
	hot := []stats.KeyRate{
		{Key: "a", Rate: 50}, {Key: "b", Rate: 40}, {Key: "c", Rate: 30},
	}
	plan(c, hot, []uint32{2})
	if c.Replicated() != 2 {
		t.Fatalf("Replicated = %d, want budget cap 2", c.Replicated())
	}
}

func TestForget(t *testing.T) {
	c := New(Config{HotRate: 10, Replicas: 2})
	plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 3})
	if n := c.Forget(3); n != 1 {
		t.Fatalf("Forget = %d", n)
	}
	if got := c.Holders("a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("holders after Forget = %v", got)
	}
	// Next tick re-pushes to the full successor set.
	acts := plan(c, []stats.KeyRate{{Key: "a", Rate: 20}}, []uint32{2, 4})
	if got := pushesTo(acts, "a"); len(got) != 2 {
		t.Fatalf("pushes after Forget = %v", got)
	}
}
