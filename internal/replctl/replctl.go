// Package replctl decides when cache entries become hot enough to replicate
// to their ring successors and when those replicas should retire.
//
// The controller is pure bookkeeping: it consumes the decayed per-key load
// estimates from stats.LoadTracker plus two callbacks describing current
// ring placement, and emits push/retire actions. Sending the resulting
// ReplicaPush frames, pulling bodies, and updating the directory are the
// caller's job (internal/core), which keeps this logic trivially unit
// testable without a cluster.
package replctl

import (
	"repro/internal/stats"
)

// Action is one replication decision: push (or refresh) a replica of Key on
// Node, or retire it.
type Action struct {
	Key    string
	Node   uint32
	Rate   float64
	Retire bool
}

// Config tunes the control loop.
type Config struct {
	// HotRate is the decayed requests/second above which a self-owned key
	// is replicated.
	HotRate float64
	// Hysteresis scales HotRate into the retire threshold: a replicated
	// key retires only when its rate falls below HotRate*Hysteresis, so
	// load hovering at the threshold does not flap replicas. Values
	// outside (0, 1) default to 0.5.
	Hysteresis float64
	// Replicas is how many ring successors receive a copy of a hot key.
	Replicas int
	// MaxKeys bounds how many keys may be replicated at once; the hottest
	// win. 0 means 64.
	MaxKeys int
}

type repState struct {
	holders []uint32
	rate    float64
}

// Controller tracks which keys this node (as home owner) has replicated and
// plans pushes and retirements. Not safe for concurrent use; drive it from
// a single control-loop goroutine.
type Controller struct {
	cfg        Config
	replicated map[string]*repState
}

// New creates a controller.
func New(cfg Config) *Controller {
	if cfg.Hysteresis <= 0 || cfg.Hysteresis >= 1 {
		cfg.Hysteresis = 0.5
	}
	if cfg.MaxKeys <= 0 {
		cfg.MaxKeys = 64
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	return &Controller{cfg: cfg, replicated: make(map[string]*repState)}
}

// RetireRate returns the rate below which a replicated key retires.
func (c *Controller) RetireRate() float64 {
	return c.cfg.HotRate * c.cfg.Hysteresis
}

// Replicated reports how many keys this controller currently has
// replicated.
func (c *Controller) Replicated() int { return len(c.replicated) }

// Holders returns the holder set the controller last pushed for key (nil if
// the key is not replicated).
func (c *Controller) Holders(key string) []uint32 {
	st := c.replicated[key]
	if st == nil {
		return nil
	}
	out := make([]uint32, len(st.holders))
	copy(out, st.holders)
	return out
}

// Plan consumes one tick's decayed load estimates (hottest first, as
// returned by LoadTracker.Hot — call it with minRate no higher than
// RetireRate so keys inside the hysteresis band are visible) and returns the
// actions to take. owned reports whether this node is still the ring home
// of key; successors returns the ring successor set for key with the home
// excluded (may be shorter than Replicas on small rings, or nil when the
// key is currently unplaceable).
//
// Pushes are emitted every tick for every key that should stay replicated —
// holders treat a repeated push as a lease refresh and only pull the body
// once — so a holder that missed the original push (or restarted) converges
// on the next tick.
func (c *Controller) Plan(hot []stats.KeyRate, owned func(string) bool, successors func(string) []uint32) []Action {
	var acts []Action
	seen := make(map[string]float64, len(hot))

	for _, kr := range hot {
		seen[kr.Key] = kr.Rate
		st := c.replicated[kr.Key]
		if st == nil {
			// Not yet replicated: needs to clear the full threshold and
			// the key-count budget.
			if kr.Rate < c.cfg.HotRate || len(c.replicated) >= c.cfg.MaxKeys {
				continue
			}
		} else if kr.Rate < c.RetireRate() {
			continue // decayed: handled by the retire sweep below
		}
		if !owned(kr.Key) {
			// Ring moved the key's home elsewhere; forget our claim. The
			// new owner runs its own controller, and stale holders age
			// out via the lease TTL.
			delete(c.replicated, kr.Key)
			continue
		}
		want := successors(kr.Key)
		if len(want) > c.cfg.Replicas {
			want = want[:c.cfg.Replicas]
		}
		if len(want) == 0 {
			delete(c.replicated, kr.Key)
			continue
		}
		if st == nil {
			st = &repState{}
			c.replicated[kr.Key] = st
		}
		// Retire holders the ring no longer names as successors.
		for _, old := range st.holders {
			if !containsNode(want, old) {
				acts = append(acts, Action{Key: kr.Key, Node: old, Rate: kr.Rate, Retire: true})
			}
		}
		for _, n := range want {
			acts = append(acts, Action{Key: kr.Key, Node: n, Rate: kr.Rate})
		}
		st.holders = append(st.holders[:0], want...)
		st.rate = kr.Rate
	}

	// Retire sweep: replicated keys that decayed below the hysteresis floor
	// (or vanished from the tracker entirely, or changed home).
	for key, st := range c.replicated {
		rate, tracked := seen[key]
		if tracked && rate >= c.RetireRate() && owned(key) {
			continue
		}
		if owned(key) {
			for _, n := range st.holders {
				acts = append(acts, Action{Key: key, Node: n, Rate: rate, Retire: true})
			}
		}
		delete(c.replicated, key)
	}
	return acts
}

// Forget drops controller state for every key held by a departed node and
// returns how many holder records were dropped. The directory's holder
// index is cleaned separately; this only stops future refreshes to the dead
// node (the next Plan re-pushes to the key's new successor set).
func (c *Controller) Forget(node uint32) int {
	dropped := 0
	for key, st := range c.replicated {
		kept := st.holders[:0]
		for _, h := range st.holders {
			if h == node {
				dropped++
				continue
			}
			kept = append(kept, h)
		}
		st.holders = kept
		if len(st.holders) == 0 {
			delete(c.replicated, key)
		}
	}
	return dropped
}

func containsNode(list []uint32, n uint32) bool {
	for _, v := range list {
		if v == n {
			return true
		}
	}
	return false
}
