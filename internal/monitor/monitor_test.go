package monitor

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// recorder collects invalidation calls.
type recorder struct {
	mu       sync.Mutex
	patterns []string
}

func (r *recorder) invalidate(pattern string) int {
	r.mu.Lock()
	r.patterns = append(r.patterns, pattern)
	r.mu.Unlock()
	return 1
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.patterns)
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// touch bumps a file's mtime decisively (filesystem mtime granularity can be
// coarse).
func touch(t *testing.T, path string) {
	t.Helper()
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}

func TestAddRequiresPathAndPattern(t *testing.T) {
	m := New(func(string) int { return 0 }, time.Second, nil)
	if err := m.Add(Watch{Path: "", Pattern: "x"}); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := m.Add(Watch{Path: "x", Pattern: ""}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestPollNoChangeNoFire(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "v1")

	var rec recorder
	m := New(rec.invalidate, time.Second, nil)
	if err := m.Add(Watch{Path: src, Pattern: "GET /cgi-bin/q*"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if fired := m.Poll(); fired != 0 {
			t.Fatalf("poll %d fired %d invalidations without a change", i, fired)
		}
	}
	if rec.count() != 0 {
		t.Fatalf("invalidations = %d, want 0", rec.count())
	}
}

func TestPollFiresOnModification(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "v1")

	var rec recorder
	m := New(rec.invalidate, time.Second, nil)
	m.Add(Watch{Path: src, Pattern: "GET /cgi-bin/q*"})

	writeFile(t, src, "v2 with more bytes")
	touch(t, src)
	if fired := m.Poll(); fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if rec.count() != 1 || rec.patterns[0] != "GET /cgi-bin/q*" {
		t.Fatalf("patterns = %v", rec.patterns)
	}
	// Stable afterwards.
	if fired := m.Poll(); fired != 0 {
		t.Fatalf("second poll fired %d", fired)
	}
	if m.Fired() != 1 {
		t.Fatalf("Fired() = %d", m.Fired())
	}
}

// Regression: two same-size writes landing within the filesystem's mtime
// granularity used to be invisible — observe() compared only mtime and size,
// so the second write never fired an invalidation and caches served the old
// result forever. The content hash must catch it. The test simulates the
// granularity collision deterministically by pinning the rewritten file's
// mtime back to the baseline's.
func TestPollFiresOnSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "balance=100")
	pinned := time.Unix(1000000, 0)
	if err := os.Chtimes(src, pinned, pinned); err != nil {
		t.Fatal(err)
	}

	var rec recorder
	m := New(rec.invalidate, time.Second, clock.NewFake(time.Unix(0, 0)))
	m.Add(Watch{Path: src, Pattern: "GET /cgi-bin/balance*"})

	// Same byte count, same mtime: only the content differs.
	writeFile(t, src, "balance=999")
	if err := os.Chtimes(src, pinned, pinned); err != nil {
		t.Fatal(err)
	}
	if fired := m.Poll(); fired != 1 {
		t.Fatalf("fired = %d, want 1 for same-size same-mtime rewrite", fired)
	}
	if rec.count() != 1 || rec.patterns[0] != "GET /cgi-bin/balance*" {
		t.Fatalf("patterns = %v", rec.patterns)
	}
	// Stable afterwards: the new content is the baseline now.
	if fired := m.Poll(); fired != 0 {
		t.Fatalf("second poll fired %d", fired)
	}
}

func TestPollFiresOnDeletion(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "v1")

	var rec recorder
	m := New(rec.invalidate, time.Second, nil)
	m.Add(Watch{Path: src, Pattern: "GET /x*"})

	os.Remove(src)
	if fired := m.Poll(); fired != 1 {
		t.Fatalf("fired = %d, want 1 on deletion", fired)
	}
	// Still gone: no repeat fire.
	if fired := m.Poll(); fired != 0 {
		t.Fatalf("repeat fire on steady absence: %d", fired)
	}
	// Recreation fires again.
	writeFile(t, src, "v2")
	if fired := m.Poll(); fired != 1 {
		t.Fatalf("fired = %d, want 1 on recreation", fired)
	}
}

func TestWatchMissingFileBaseline(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "not-yet.db")
	var rec recorder
	m := New(rec.invalidate, time.Second, nil)
	m.Add(Watch{Path: src, Pattern: "GET /y*"})

	if fired := m.Poll(); fired != 0 {
		t.Fatal("fired while file still missing")
	}
	writeFile(t, src, "created")
	if fired := m.Poll(); fired != 1 {
		t.Fatalf("fired = %d, want 1 when file appears", fired)
	}
}

func TestRemoveStopsWatching(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "v1")

	var rec recorder
	m := New(rec.invalidate, time.Second, nil)
	m.Add(Watch{Path: src, Pattern: "GET /z*"})
	m.Remove(src)
	writeFile(t, src, "v2 longer")
	touch(t, src)
	if fired := m.Poll(); fired != 0 {
		t.Fatalf("fired = %d after Remove", fired)
	}
	if len(m.Watches()) != 0 {
		t.Fatalf("Watches = %v", m.Watches())
	}
}

func TestStartPollsOnTicks(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "data.db")
	writeFile(t, src, "v1")

	fake := clock.NewFake(time.Unix(0, 0))
	var rec recorder
	m := New(rec.invalidate, time.Second, fake)
	m.Add(Watch{Path: src, Pattern: "GET /t*"})
	m.Start()
	defer m.Stop()

	writeFile(t, src, "v2 changed content")
	touch(t, src)
	// Wait for the loop to arm its timer, then tick.
	for i := 0; fake.Waiters() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	fake.Advance(time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for rec.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("monitor never fired on tick")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDefaultInterval(t *testing.T) {
	m := New(func(string) int { return 0 }, 0, nil)
	if m.interval != time.Second {
		t.Fatalf("interval = %v, want 1s default", m.interval)
	}
}
