// Package monitor implements source-file monitoring for cache invalidation
// — the mechanism the paper discusses as an alternative to TTL expiry
// (Section 4.2, citing Vahdat & Anderson's Transparent Result Caching): the
// inputs of a CGI program are watched, and when a source changes, the cached
// results that depend on it are invalidated.
//
// A Monitor polls the modification time, size, and content hash of registered
// files on a configurable interval (polling keeps the implementation
// dependency-free and portable; the hash catches same-size rewrites within
// the mtime granularity) and calls the bound invalidation function — normally
// core.Server.Invalidate — with the dependent key pattern.
package monitor

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// Invalidator receives the key pattern whose cached results became stale.
// core.Server.Invalidate satisfies this signature.
type Invalidator func(pattern string) int

// Watch binds one source file to the cache-key pattern that depends on it.
type Watch struct {
	// Path of the watched source file.
	Path string
	// Pattern is the cache-key pattern to invalidate when Path changes
	// (cacheability.Match syntax against keys like "GET /cgi-bin/q?a=1").
	Pattern string
}

type watchState struct {
	watch   Watch
	exists  bool
	modTime time.Time
	size    int64
	// sum is an FNV-64a hash of the file contents. mtime+size alone misses a
	// same-size rewrite landing within the filesystem's mtime granularity
	// (coarse on ext3-era systems, and still a full second on some mounts), so
	// every observation also compares content.
	sum uint64
}

// hashFile returns the FNV-64a sum of the file contents, and whether the file
// was readable. Watched sources are CGI inputs — small configuration and data
// files — so reading them whole each poll is cheap.
func hashFile(path string) (uint64, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64(), true
}

// Monitor polls watched files and fires invalidations.
type Monitor struct {
	invalidate Invalidator
	interval   time.Duration
	clk        clock.Clock

	mu      sync.Mutex
	watches map[string]*watchState
	fired   int64

	stop    chan struct{}
	done    chan struct{}
	started bool
	once    sync.Once
}

// New creates a monitor that calls invalidate when a watched source changes.
// interval <= 0 defaults to one second (the original monitored "every few
// seconds"). A nil clk uses the real clock.
func New(invalidate Invalidator, interval time.Duration, clk clock.Clock) *Monitor {
	if interval <= 0 {
		interval = time.Second
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &Monitor{
		invalidate: invalidate,
		interval:   interval,
		clk:        clk,
		watches:    make(map[string]*watchState),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Add registers a watch. The file's current state (or absence) becomes the
// baseline; the first observed change fires the invalidation.
func (m *Monitor) Add(w Watch) error {
	if w.Path == "" || w.Pattern == "" {
		return fmt.Errorf("monitor: watch needs both path and pattern: %+v", w)
	}
	st := &watchState{watch: w}
	st.observe()
	m.mu.Lock()
	m.watches[w.Path] = st
	m.mu.Unlock()
	return nil
}

// Remove drops the watch on path.
func (m *Monitor) Remove(path string) {
	m.mu.Lock()
	delete(m.watches, path)
	m.mu.Unlock()
}

// Watches returns the watched paths, sorted.
func (m *Monitor) Watches() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.watches))
	for p := range m.watches {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Fired reports how many invalidations the monitor has issued.
func (m *Monitor) Fired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fired
}

// observe refreshes the baseline and reports whether the file changed since
// the previous observation.
func (st *watchState) observe() (changed bool) {
	info, err := os.Stat(st.watch.Path)
	if err != nil {
		changed = st.exists // existed before, gone now
		st.exists = false
		st.modTime = time.Time{}
		st.size = -1
		st.sum = 0
		return changed
	}
	sum, hashed := hashFile(st.watch.Path)
	if !st.exists {
		// Appearing counts as a change only if we had previously seen the
		// file (handled above); first sight of a created file after a
		// missing baseline is also a change.
		changed = st.size == -1
	} else {
		changed = !info.ModTime().Equal(st.modTime) || info.Size() != st.size ||
			(hashed && sum != st.sum)
	}
	st.exists = true
	st.modTime = info.ModTime()
	st.size = info.Size()
	if hashed {
		st.sum = sum
	}
	return changed
}

// Poll checks every watch once and fires invalidations for changed sources.
// It returns the number of invalidations fired. The background loop calls
// this on each tick; tests may call it directly.
func (m *Monitor) Poll() int {
	m.mu.Lock()
	states := make([]*watchState, 0, len(m.watches))
	for _, st := range m.watches {
		states = append(states, st)
	}
	m.mu.Unlock()

	fired := 0
	for _, st := range states {
		if st.observe() {
			m.invalidate(st.watch.Pattern)
			fired++
		}
	}
	if fired > 0 {
		m.mu.Lock()
		m.fired += int64(fired)
		m.mu.Unlock()
	}
	return fired
}

// Start launches the polling loop. Call Stop to end it.
func (m *Monitor) Start() {
	m.mu.Lock()
	m.started = true
	m.mu.Unlock()
	go func() {
		defer close(m.done)
		for {
			select {
			case <-m.stop:
				return
			case <-m.clk.After(m.interval):
				m.Poll()
			}
		}
	}()
}

// Stop ends the polling loop and waits for it to exit. Safe to call more
// than once, and before Start (in which case there is no loop to wait for).
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.mu.Lock()
	started := m.started
	m.mu.Unlock()
	if started {
		<-m.done
	}
}
