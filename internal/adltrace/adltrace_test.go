package adltrace

import (
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Default())
	b := Generate(Default())
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := Default()
	a := Generate(cfg)
	cfg.Seed++
	b := Generate(cfg)
	same := 0
	for i := range a.Records {
		if a.Records[i] == b.Records[i] {
			same++
		}
	}
	if same == len(a.Records) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCalibrationMatchesSection3(t *testing.T) {
	tr := Generate(Default())
	s := tr.Summarize()

	if s.Total != 69337 {
		t.Fatalf("total = %d, want 69337", s.Total)
	}
	cgiFrac := float64(s.CGI) / float64(s.Total)
	if math.Abs(cgiFrac-0.413) > 0.005 {
		t.Fatalf("CGI fraction = %.3f, want ~0.413", cgiFrac)
	}
	// CGI mean within 25% of the paper's 1.6 s; file mean near 0.03 s.
	if s.MeanCGI < 1.2 || s.MeanCGI > 2.0 {
		t.Fatalf("mean CGI = %.2f s, want ~1.6 s", s.MeanCGI)
	}
	if s.MeanFile < 0.02 || s.MeanFile > 0.04 {
		t.Fatalf("mean file = %.3f s, want ~0.03 s", s.MeanFile)
	}
	// CGI dominates service time (~97% in the paper).
	share := s.CGIService / s.TotalService
	if share < 0.9 {
		t.Fatalf("CGI service share = %.2f, want > 0.9", share)
	}
	// Two orders of magnitude between CGI and file means.
	if s.MeanCGI/s.MeanFile < 25 {
		t.Fatalf("CGI/file mean ratio = %.1f, want >> 1", s.MeanCGI/s.MeanFile)
	}
}

func TestRepeatsShareServiceTime(t *testing.T) {
	// Cacheable (CGI) repeats must take the same time every occurrence —
	// that is what makes caching them correct. File keys repeat too but are
	// never cached, so their per-fetch times may vary.
	tr := Generate(Default())
	svc := make(map[string]float64)
	for _, r := range tr.Records {
		if !r.IsCGI {
			continue
		}
		if prev, ok := svc[r.Key]; ok {
			if prev != r.Service {
				t.Fatalf("key %q has differing service times %v and %v", r.Key, prev, r.Service)
			}
		} else {
			svc[r.Key] = r.Service
		}
	}
}

func TestCGIRequestsFilter(t *testing.T) {
	tr := Generate(Default())
	cgis := tr.CGIRequests()
	for _, r := range cgis {
		if !r.IsCGI {
			t.Fatal("CGIRequests returned a file record")
		}
		if !strings.HasPrefix(r.URI, "/cgi-bin/adl?") {
			t.Fatalf("CGI URI = %q", r.URI)
		}
		if !strings.Contains(r.URI, "cost=") {
			t.Fatalf("CGI URI missing cost parameter: %q", r.URI)
		}
	}
	s := tr.Summarize()
	if len(cgis) != s.CGI {
		t.Fatalf("CGIRequests = %d, want %d", len(cgis), s.CGI)
	}
}

func TestServiceTimesBounded(t *testing.T) {
	tr := Generate(Default())
	for _, r := range tr.Records {
		if r.Service <= 0 || r.Service > 240 {
			t.Fatalf("service time %v out of range for %q", r.Service, r.Key)
		}
	}
}

func TestSmallCustomConfig(t *testing.T) {
	cfg := Config{
		TotalRequests:    1000,
		CGIFraction:      0.5,
		HotClasses:       10,
		HotRepeats:       50,
		HotMedianSeconds: 1,
		HotSigma:         0.5,
		ColdMeanSeconds:  0.5,
		ColdSigma:        0.5,
		FileMeanSeconds:  0.01,
		Seed:             7,
	}
	tr := Generate(cfg)
	s := tr.Summarize()
	if s.Total != 1000 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.CGI != 500 {
		t.Fatalf("cgi = %d, want 500", s.CGI)
	}
}

func TestZeroConfigUsesDefault(t *testing.T) {
	tr := Generate(Config{})
	if got := len(tr.Records); got != 69337 {
		t.Fatalf("records = %d, want default 69337", got)
	}
}
