// Package adltrace generates a synthetic access trace calibrated to the
// Alexandria Digital Library log the paper analyzes in Section 3 (September–
// October 1997): 69,337 analyzable requests of which 41.3% are CGI
// executions; file fetches average 0.03 s while CGI requests average 1.6 s
// (two orders of magnitude apart); CGI accounts for ~97% of the total
// 46,156 s of service time; and repetition is concentrated in a few hundred
// hot CGI requests, so that caching CGI results longer than 1 s would save
// roughly 29% of total service time with under two hundred cache entries.
//
// The original log is not public; this generator reproduces those aggregate
// statistics with a deterministic, seeded construction so Table 1 can be
// regenerated and the multi-node experiments can replay a workload with the
// paper's repetition structure.
package adltrace

import (
	"fmt"
	"math"
	"math/rand"
)

// Record is one trace entry.
type Record struct {
	// Key canonically identifies the request (repeats share a Key).
	Key string
	// URI is the replayable request target. CGI URIs carry a cost=<ms>
	// parameter that the synthetic ADL program converts into service time.
	URI string
	// IsCGI distinguishes dynamic requests from file fetches.
	IsCGI bool
	// Service is the request's service time in paper seconds. Repeats of a
	// key always have the same service time.
	Service float64
}

// Trace is a generated access log.
type Trace struct {
	Records []Record
}

// Config parameterizes generation. The zero value is replaced by Default().
type Config struct {
	// TotalRequests in the trace (paper: 69,337).
	TotalRequests int
	// CGIFraction of requests that are CGI (paper: 0.413).
	CGIFraction float64
	// HotClasses is the number of distinct repeated CGI requests.
	HotClasses int
	// HotRepeats is the total number of repeat occurrences across hot
	// classes.
	HotRepeats int
	// HotMedianSeconds / HotSigma parameterize the lognormal service time of
	// hot classes (these are the expensive queries worth caching).
	HotMedianSeconds float64
	HotSigma         float64
	// ColdMeanSeconds is the mean service time of unrepeated CGI requests.
	ColdMeanSeconds float64
	ColdSigma       float64
	// FileMeanSeconds is the mean file-fetch service time (paper: 0.03).
	FileMeanSeconds float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Default returns the configuration calibrated against Section 3.
func Default() Config {
	return Config{
		TotalRequests:    69337,
		CGIFraction:      0.413,
		HotClasses:       225,
		HotRepeats:       3000,
		HotMedianSeconds: 3.0,
		HotSigma:         1.1,
		ColdMeanSeconds:  1.15,
		ColdSigma:        1.3,
		FileMeanSeconds:  0.03,
		Seed:             1998,
	}
}

// Generate builds a trace. The same Config always yields the same trace.
func Generate(cfg Config) *Trace {
	if cfg.TotalRequests == 0 {
		cfg = Default()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalCGI := int(math.Round(float64(cfg.TotalRequests) * cfg.CGIFraction))
	totalFiles := cfg.TotalRequests - totalCGI

	records := make([]Record, 0, cfg.TotalRequests)

	// Hot CGI classes: each appears once plus its share of the repeats.
	// Popularity decays linearly with rank, concentrating repetition the way
	// digital-library map queries did.
	type class struct {
		key     string
		service float64
		count   int
	}
	hot := make([]class, cfg.HotClasses)
	weightTotal := 0.0
	for i := range hot {
		service := lognormal(rng, math.Log(cfg.HotMedianSeconds), cfg.HotSigma)
		// Keep hot queries within the plausible ADL range; the paper's
		// longest request runs a few hundred seconds.
		service = clamp(service, 0.15, 240)
		hot[i] = class{
			key:     fmt.Sprintf("cgi:hot:%04d", i),
			service: service,
			count:   1,
		}
		weightTotal += float64(cfg.HotClasses - i)
	}
	for r := 0; r < cfg.HotRepeats; r++ {
		x := rng.Float64() * weightTotal
		acc := 0.0
		idx := cfg.HotClasses - 1
		for i := 0; i < cfg.HotClasses; i++ {
			acc += float64(cfg.HotClasses - i)
			if x < acc {
				idx = i
				break
			}
		}
		hot[idx].count++
	}
	hotOccurrences := 0
	for _, c := range hot {
		hotOccurrences += c.count
	}

	// Cold CGI requests: all unique.
	coldCount := totalCGI - hotOccurrences
	if coldCount < 0 {
		coldCount = 0
	}
	coldMu := math.Log(cfg.ColdMeanSeconds) - cfg.ColdSigma*cfg.ColdSigma/2

	for _, c := range hot {
		uri := cgiURI(c.key, c.service)
		for i := 0; i < c.count; i++ {
			records = append(records, Record{Key: c.key, URI: uri, IsCGI: true, Service: c.service})
		}
	}
	for i := 0; i < coldCount; i++ {
		service := clamp(lognormal(rng, coldMu, cfg.ColdSigma), 0.02, 240)
		key := fmt.Sprintf("cgi:cold:%06d", i)
		records = append(records, Record{Key: key, URI: cgiURI(key, service), IsCGI: true, Service: service})
	}

	// File fetches: exponential around the mean, with repetition irrelevant
	// to Table 1 (files are never cached by Swala). Use a modest set of
	// distinct files.
	for i := 0; i < totalFiles; i++ {
		service := clamp(rng.ExpFloat64()*cfg.FileMeanSeconds, 0.001, 2)
		key := fmt.Sprintf("file:%05d", i%4096)
		records = append(records, Record{
			Key:     key,
			URI:     fmt.Sprintf("/files/doc%05d.html", i%4096),
			IsCGI:   false,
			Service: service,
		})
	}

	rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
	return &Trace{Records: records}
}

func cgiURI(key string, serviceSeconds float64) string {
	return fmt.Sprintf("/cgi-bin/adl?q=%s&cost=%d", key, int(math.Round(serviceSeconds*1000)))
}

func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Summary aggregates trace-wide statistics (the numbers quoted at the start
// of Section 3).
type Summary struct {
	Total        int
	CGI          int
	Files        int
	TotalService float64 // paper seconds
	CGIService   float64
	FileService  float64
	MeanService  float64
	MeanCGI      float64
	MeanFile     float64
	LongestCGI   float64
}

// Summarize computes a trace Summary.
func (t *Trace) Summarize() Summary {
	var s Summary
	for _, r := range t.Records {
		s.Total++
		s.TotalService += r.Service
		if r.IsCGI {
			s.CGI++
			s.CGIService += r.Service
			if r.Service > s.LongestCGI {
				s.LongestCGI = r.Service
			}
		} else {
			s.Files++
			s.FileService += r.Service
		}
	}
	if s.Total > 0 {
		s.MeanService = s.TotalService / float64(s.Total)
	}
	if s.CGI > 0 {
		s.MeanCGI = s.CGIService / float64(s.CGI)
	}
	if s.Files > 0 {
		s.MeanFile = s.FileService / float64(s.Files)
	}
	return s
}

// CGIRequests returns just the CGI records, in trace order — the replayable
// dynamic workload for the multi-node experiments.
func (t *Trace) CGIRequests() []Record {
	out := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if r.IsCGI {
			out = append(out, r)
		}
	}
	return out
}
