package directory

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQuarantineSkipsLookup(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /r", 2), t0)

	if _, ok := d.Lookup("GET /r", t0); !ok {
		t.Fatal("remote entry not found before quarantine")
	}
	d.SetQuarantined(2, true)
	if _, ok := d.Lookup("GET /r", t0); ok {
		t.Fatal("quarantined node's entry still visible to Lookup")
	}
	// The entry is hidden, not deleted: lifting the quarantine restores it.
	d.SetQuarantined(2, false)
	if _, ok := d.Lookup("GET /r", t0); !ok {
		t.Fatal("entry lost after quarantine lift")
	}
}

func TestQuarantineNeverHidesLocal(t *testing.T) {
	d := New(1, 0, nil)
	d.InsertLocal(entry("GET /l", 1), t0)
	d.SetQuarantined(1, true) // must be ignored
	if _, ok := d.Lookup("GET /l", t0); !ok {
		t.Fatal("local table quarantined")
	}
	if d.IsQuarantined(1) {
		t.Fatal("self marked quarantined")
	}
}

func TestQuarantineUpdatesStillApply(t *testing.T) {
	d := New(1, 0, nil)
	d.SetQuarantined(2, true)

	// Broadcast updates and syncs keep applying while quarantined, so the
	// replica is already converged when the quarantine lifts.
	d.ApplyInsert(entry("GET /during", 2), t0)
	d.ApplySync(2, false, []SyncOp{{Entry: entry("GET /synced", 2)}}, 7, t0)

	if _, ok := d.Lookup("GET /during", t0); ok {
		t.Fatal("quarantined entry visible")
	}
	d.SetQuarantined(2, false)
	if _, ok := d.Lookup("GET /during", t0); !ok {
		t.Fatal("update applied during quarantine lost")
	}
	if _, ok := d.Lookup("GET /synced", t0); !ok {
		t.Fatal("sync applied during quarantine lost")
	}
	if got := d.PeerVersion(2); got != 7 {
		t.Fatalf("peer version = %d, want 7 (sync must advance it during quarantine)", got)
	}
}

func TestQuarantineIdempotentAndListed(t *testing.T) {
	d := New(1, 0, nil)
	d.SetQuarantined(3, true)
	d.SetQuarantined(3, true) // repeat must not double-count
	d.SetQuarantined(2, true)
	if got := d.Quarantined(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Quarantined() = %v, want [2 3]", got)
	}
	d.SetQuarantined(3, false)
	d.SetQuarantined(3, false)
	if got := d.Quarantined(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Quarantined() = %v, want [2]", got)
	}
	d.SetQuarantined(2, false)
	if d.quarCount.Load() != 0 {
		t.Fatalf("quarCount = %d after all lifts, want 0", d.quarCount.Load())
	}
}

func TestDropPeerClearsQuarantine(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /r", 2), t0)
	d.SetQuarantined(2, true)
	d.DropPeer(2)
	if d.IsQuarantined(2) {
		t.Fatal("DropPeer left the node quarantined")
	}
	// A fresh entry from a rejoined peer 2 must be visible again.
	d.ApplyInsert(entry("GET /back", 2), t0)
	if _, ok := d.Lookup("GET /back", t0); !ok {
		t.Fatal("entry from re-added peer hidden by stale quarantine")
	}
}

// TestDropPeerRacesApplySync hammers DropPeer against ApplySync (and reads)
// for the same peer; run under -race this guards the quarantine and table
// bookkeeping against torn state.
func TestDropPeerRacesApplySync(t *testing.T) {
	d := New(1, 0, nil)
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ops := []SyncOp{
				{Entry: entry(fmt.Sprintf("GET /s%d", i), 2)},
				{Delete: true, Entry: entry(fmt.Sprintf("GET /s%d", i-1), 2)},
			}
			d.ApplySync(2, i%10 == 0, ops, uint64(i+1), t0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			d.SetQuarantined(2, i%2 == 0)
			d.DropPeer(2)
		}
	}()
	go func() {
		defer wg.Done()
		now := t0
		for i := 0; i < rounds; i++ {
			d.Lookup(fmt.Sprintf("GET /s%d", i), now)
			d.IsQuarantined(2)
			d.Quarantined()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			d.ApplyInsert(entry(fmt.Sprintf("GET /i%d", i), 2), t0.Add(time.Duration(i)))
			d.PeerVersion(2)
		}
	}()
	wg.Wait()
	// Whatever interleaving happened, the quarantine bookkeeping must be
	// consistent: DropPeer ran last in its goroutine, but another goroutine
	// may have re-quarantined — the count must match the set either way.
	want := int32(len(d.Quarantined()))
	if got := d.quarCount.Load(); got != want {
		t.Fatalf("quarCount = %d, but %d node(s) quarantined", got, want)
	}
}
