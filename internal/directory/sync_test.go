package directory

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestVersionBumpsOnEveryMutation(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	if d.Version() != 0 {
		t.Fatalf("fresh directory version = %d, want 0", d.Version())
	}
	d.InsertLocal(Entry{Key: "a", Size: 1}, now)
	d.InsertLocal(Entry{Key: "b", Size: 1}, now)
	if got := d.Version(); got != 2 {
		t.Fatalf("version after 2 inserts = %d, want 2", got)
	}
	d.InsertLocal(Entry{Key: "a", Size: 2}, now) // replace counts too
	if got := d.Version(); got != 3 {
		t.Fatalf("version after replace = %d, want 3", got)
	}
	d.RemoveLocal("b")
	if got := d.Version(); got != 4 {
		t.Fatalf("version after remove = %d, want 4", got)
	}
	d.RemoveLocal("missing") // no-op removes do not version
	if got := d.Version(); got != 4 {
		t.Fatalf("version after no-op remove = %d, want 4", got)
	}
	d.TouchLocal("a") // hits are not replicated
	if got := d.Version(); got != 4 {
		t.Fatalf("version after touch = %d, want 4", got)
	}
}

func TestEvictionsAreVersioned(t *testing.T) {
	d := New(1, 2, nil)
	now := time.Now()
	d.InsertLocal(Entry{Key: "a", Size: 1}, now)
	d.InsertLocal(Entry{Key: "b", Size: 1}, now)
	evicted := d.InsertLocal(Entry{Key: "c", Size: 1}, now)
	if len(evicted) != 1 {
		t.Fatalf("evicted = %v, want 1 key", evicted)
	}
	// 3 inserts + 1 eviction delete.
	if got := d.Version(); got != 4 {
		t.Fatalf("version = %d, want 4", got)
	}
}

func TestOnUpdateSeesOpsInVersionOrder(t *testing.T) {
	d := New(1, 2, nil)
	var ops []SyncOp
	d.OnUpdate(func(op SyncOp) { ops = append(ops, op) })
	now := time.Now()
	d.InsertLocal(Entry{Key: "a", Size: 1}, now)
	d.InsertLocal(Entry{Key: "b", Size: 1}, now)
	d.InsertLocal(Entry{Key: "c", Size: 1}, now)
	d.RemoveLocal("c")
	if len(ops) != 5 { // 3 inserts + eviction + remove
		t.Fatalf("got %d ops, want 5", len(ops))
	}
	for i, op := range ops {
		if op.Version != uint64(i+1) {
			t.Fatalf("op %d has version %d, want %d", i, op.Version, i+1)
		}
	}
	if ops[3].Delete != true || ops[4].Delete != true {
		t.Fatalf("trailing ops should be deletes: %+v", ops[3:])
	}
}

func TestSyncSinceDelta(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	for i := 0; i < 10; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("k%d", i), Size: 1}, now)
	}
	ops, ver, full, ok := d.SyncSince(7)
	if !ok || full {
		t.Fatalf("SyncSince(7) = ok=%v full=%v, want delta", ok, full)
	}
	if ver != 10 || len(ops) != 3 {
		t.Fatalf("ver=%d len=%d, want 10 and 3", ver, len(ops))
	}
	if ops[0].Version != 8 || ops[2].Version != 10 {
		t.Fatalf("delta versions [%d..%d], want [8..10]", ops[0].Version, ops[2].Version)
	}
}

func TestSyncSinceCurrent(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	d.InsertLocal(Entry{Key: "a", Size: 1}, now)
	if _, _, _, ok := d.SyncSince(1); ok {
		t.Fatal("SyncSince(current) reported work to do")
	}
	empty := New(2, 0, nil)
	if _, _, _, ok := empty.SyncSince(0); ok {
		t.Fatal("SyncSince(0) on empty directory reported work to do")
	}
}

func TestSyncSinceZeroIsFullSnapshot(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	d.InsertLocal(Entry{Key: "a", Size: 1}, now)
	d.InsertLocal(Entry{Key: "b", Size: 1}, now)
	d.RemoveLocal("a")
	ops, ver, full, ok := d.SyncSince(0)
	if !ok || !full {
		t.Fatalf("SyncSince(0) = ok=%v full=%v, want full snapshot", ok, full)
	}
	if ver != 3 || len(ops) != 1 || ops[0].Entry.Key != "b" {
		t.Fatalf("snapshot = %+v at ver %d, want just live key b at 3", ops, ver)
	}
}

func TestSyncSinceFutureVersionIsFull(t *testing.T) {
	// A replica claiming a version beyond ours saw a previous incarnation
	// of this node; it must get an authoritative snapshot.
	d := New(1, 0, nil)
	d.InsertLocal(Entry{Key: "a", Size: 1}, time.Now())
	_, ver, full, ok := d.SyncSince(99)
	if !ok || !full || ver != 1 {
		t.Fatalf("SyncSince(future) = ver=%d full=%v ok=%v, want full at 1", ver, full, ok)
	}
}

func TestSyncSinceJournalOverflowFallsBackToFull(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	n := 2*journalLimit + 100
	for i := 0; i < n; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("k%d", i), Size: 1}, now)
	}
	// A replica only 10 behind is still covered by the journal.
	if _, _, full, ok := d.SyncSince(uint64(n - 10)); !ok || full {
		t.Fatalf("near-current replica got full=%v ok=%v, want delta", full, ok)
	}
	// A replica from before the journal window gets a snapshot.
	if _, _, full, ok := d.SyncSince(1); !ok || !full {
		t.Fatalf("ancient replica got full=%v ok=%v, want full", full, ok)
	}
}

func TestApplySyncFullReplacesReplica(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	// Stale entry that the sync must clear out.
	d.ApplyInsert(Entry{Key: "stale", Owner: 2, Size: 1}, now)
	d.ApplySync(2, true, []SyncOp{
		{Entry: Entry{Key: "x", Size: 1}},
		{Entry: Entry{Key: "y", Size: 2}},
	}, 42, now)
	if _, ok := d.Lookup("stale", now); ok {
		t.Fatal("full sync kept a stale entry")
	}
	if _, ok := d.Lookup("x", now); !ok {
		t.Fatal("full sync dropped a snapshot entry")
	}
	if got := d.PeerVersion(2); got != 42 {
		t.Fatalf("peer version = %d, want 42", got)
	}
	// Full sync resets even to a lower version (sender restart).
	d.ApplySync(2, true, nil, 3, now)
	if got := d.PeerVersion(2); got != 3 {
		t.Fatalf("peer version after reset = %d, want 3", got)
	}
}

func TestApplySyncDelta(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	d.ApplyInsert(Entry{Key: "old", Owner: 2, Size: 1}, now)
	d.AdvancePeerVersion(2, 5)
	d.ApplySync(2, false, []SyncOp{
		{Version: 6, Entry: Entry{Key: "new", Size: 1}},
		{Version: 7, Delete: true, Entry: Entry{Key: "old"}},
	}, 7, now)
	if _, ok := d.Lookup("old", now); ok {
		t.Fatal("delta delete not applied")
	}
	if _, ok := d.Lookup("new", now); !ok {
		t.Fatal("delta insert not applied")
	}
	if got := d.PeerVersion(2); got != 7 {
		t.Fatalf("peer version = %d, want 7", got)
	}
	// Deltas never regress the recorded version.
	d.AdvancePeerVersion(2, 4)
	if got := d.PeerVersion(2); got != 7 {
		t.Fatalf("peer version regressed to %d", got)
	}
}

func TestDropPeerForgetsVersion(t *testing.T) {
	d := New(1, 0, nil)
	d.AdvancePeerVersion(2, 9)
	d.DropPeer(2)
	if got := d.PeerVersion(2); got != 0 {
		t.Fatalf("peer version after drop = %d, want 0", got)
	}
}

func TestConcurrentMutationsKeepJournalContiguous(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				d.InsertLocal(Entry{Key: fmt.Sprintf("g%d-k%d", g, i), Size: 1}, now)
			}
		}(g)
	}
	wg.Wait()
	ops, ver, full, ok := d.SyncSince(d.Version() - 100)
	if !ok || full {
		t.Fatalf("SyncSince near head: full=%v ok=%v", full, ok)
	}
	if len(ops) != 100 {
		t.Fatalf("delta length = %d, want 100", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i].Version != ops[i-1].Version+1 {
			t.Fatalf("journal gap: %d then %d", ops[i-1].Version, ops[i].Version)
		}
	}
	if ver != 4000 {
		t.Fatalf("final version = %d, want 4000", ver)
	}
}
