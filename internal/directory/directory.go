// Package directory implements Swala's replicated global cache directory.
// Every node keeps one table per cluster node; each table records what is
// cached at the corresponding node. The paper's intra-node consistency
// protocol locks at table granularity with read/write locks — one lock per
// directory would serialize lookups, per-entry locks would cost a
// lock/unlock pair per probed entry. This implementation goes one step
// further along the same axis: each table is hash-striped into a fixed
// number of shards, each with its own RW lock, so that concurrent writers
// to the same table (inserts racing touches racing expiry) stop
// serializing too. Readers and writers of different keys proceed fully in
// parallel; the paper's argument (coarser = contention, finer = overhead)
// picks the stripe count as the middle ground.
//
// The directory stores meta-data only. The local table additionally enforces
// a capacity (in entries, as in the paper's experiments with cache sizes
// 2000 and 20) through a pluggable replacement policy; evictions are
// reported to the caller so the cache manager can delete the stored body and
// broadcast the deletion.
package directory

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/replacement"
)

// Entry is the meta-data for one cached result.
type Entry struct {
	// Key canonically identifies the request (httpmsg.CacheKey form).
	Key string
	// Owner is the node holding the body.
	Owner uint32
	// Size is the body size in bytes.
	Size int64
	// ExecTime is how long the CGI ran to produce the result.
	ExecTime time.Duration
	// Inserted is when the entry was cached.
	Inserted time.Time
	// Expires is the TTL deadline; zero means never expires.
	Expires time.Time
	// Hits counts fetches served from this entry (maintained by the owner).
	Hits int64
	// Replica marks a local-table entry held as an adaptive replica of a
	// key homed elsewhere on the ring: serveable like any owned entry, but
	// outside the replacement policy, never journaled, and skipped by
	// rebalance scans. In-memory only — never encoded on the wire.
	Replica bool
	// Holders lists nodes currently serving replicas of the key (ring-mode
	// synthetic lookup results only; nil when the key is unreplicated).
	Holders []uint32
}

// Expired reports whether the entry's TTL has passed at time now.
func (e *Entry) Expired(now time.Time) bool {
	return !e.Expires.IsZero() && now.After(e.Expires)
}

// numStripes is the per-table shard count. 32 stripes keep the per-stripe
// maps small and make lock collisions between concurrent accessors of
// different keys unlikely at the goroutine counts the server runs (tens of
// request threads), while the fixed array keeps stripe selection a single
// hash + mask with no allocation.
const numStripes = 32

// stripe is one lock-shard of a table.
type stripe struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// table is the per-node portion of the directory, hash-striped so that
// concurrent operations on different keys do not contend on one lock.
type table struct {
	stripes [numStripes]stripe
}

func newTable() *table {
	t := &table{}
	for i := range t.stripes {
		t.stripes[i].entries = make(map[string]*Entry)
	}
	return t
}

// stripeFor selects the shard for key with FNV-1a, inlined to avoid the
// hash.Hash allocation on every directory operation.
func (t *table) stripeFor(key string) *stripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &t.stripes[h%numStripes]
}

func (t *table) lookup(key string, now time.Time) (Entry, bool) {
	s := t.stripeFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return Entry{}, false
	}
	return *e, true
}

func (t *table) insert(e *Entry) {
	s := t.stripeFor(e.Key)
	s.mu.Lock()
	s.entries[e.Key] = e
	s.mu.Unlock()
}

// insertReporting stores e and reports whether the key was already present
// and, if so, whether the displaced entry was a held replica (replicas are
// invisible to the replacement policy, so the caller's capacity bookkeeping
// must treat overwriting one as a fresh insert).
func (t *table) insertReporting(e *Entry) (existed, wasReplica bool) {
	s := t.stripeFor(e.Key)
	s.mu.Lock()
	if old, ok := s.entries[e.Key]; ok {
		existed, wasReplica = true, old.Replica
	}
	s.entries[e.Key] = e
	s.mu.Unlock()
	return existed, wasReplica
}

// touch bumps the hit counter of key if present.
func (t *table) touch(key string) {
	s := t.stripeFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.Hits++
	}
	s.mu.Unlock()
}

func (t *table) remove(key string) bool {
	s := t.stripeFor(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	s.mu.Unlock()
	return ok
}

func (t *table) len() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

func (t *table) expiredKeys(now time.Time) []string {
	var out []string
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for k, e := range s.entries {
			if e.Expired(now) {
				out = append(out, k)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// snapshot returns copies of all entries in the table.
func (t *table) snapshot() []Entry {
	var out []Entry
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, *e)
		}
		s.mu.RUnlock()
	}
	return out
}

// SyncOp is one versioned local-table mutation, as recorded in the journal
// and handed to the OnUpdate callback. For deletes only Entry.Key (and
// Entry.Owner) are meaningful.
type SyncOp struct {
	Version uint64
	Delete  bool
	Entry   Entry
}

// journalLimit is how many recent local mutations are kept for delta sync;
// a replica further behind than this receives a full snapshot instead.
const journalLimit = 4096

// Directory is one node's replica of the global cache directory.
// All methods are safe for concurrent use.
type Directory struct {
	self uint32

	mu     sync.RWMutex // guards the tables map itself (node set changes)
	tables map[uint32]*table

	// localMu guards capacity bookkeeping (policy + capacity) for the local
	// table, the update version, and the journal. The policy structures are
	// not internally synchronized.
	localMu  sync.Mutex
	policy   replacement.Policy
	capacity int

	// version counts local-table mutations; every insert, replace, delete,
	// eviction, and expiry bumps it by one. Replicas track the highest
	// version they have applied, which is what anti-entropy sync compares.
	version uint64
	// journal holds the most recent mutations, oldest first, with contiguous
	// versions ending at version.
	journal []SyncOp
	// onUpdate, when set, observes every versioned mutation under localMu.
	onUpdate func(SyncOp)

	// peerMu guards peerVers: the highest update version applied from each
	// remote node's table.
	peerMu   sync.Mutex
	peerVers map[uint32]uint64

	// placeMu guards place, the consistent-hash placement resolver. When set
	// (ring mode) Lookup stops scanning replicated peer tables: the ring
	// names the only node that can hold a key, so an out-of-range key
	// resolves to a synthetic entry pointing at its owner — per-node
	// directory state shrinks from the whole cluster's metadata to just the
	// local table.
	placeMu sync.RWMutex
	place   func(key string) (owner uint32, ok bool)

	// quarMu guards quarantined: remote nodes whose tables Lookup must skip
	// because the failure detector declared them dead. Quarantined tables
	// keep receiving updates and syncs (so lifting the quarantine exposes a
	// converged replica); only lookups ignore them. quarCount mirrors the
	// map size so the lookup hot path can skip the lock entirely in the
	// common all-alive case.
	quarMu      sync.RWMutex
	quarantined map[uint32]bool
	quarCount   atomic.Int32

	// holders tracks, per key, which nodes currently serve adaptive replicas
	// (maintained from ReplicaEvent broadcasts). holderCount mirrors the
	// number of replicated keys so the ring-lookup hot path can skip the
	// stripe lock entirely while nothing is replicated — the default.
	holders     [numStripes]holderStripe
	holderCount atomic.Int32
}

// holderStripe is one lock-shard of the replica-holder index.
type holderStripe struct {
	mu sync.RWMutex
	m  map[string][]uint32
}

// stripeIndex selects a stripe for key (same FNV-1a as table.stripeFor).
func stripeIndex(key string) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % numStripes)
}

// New creates a directory for node self with the given local capacity (in
// entries; <=0 means unbounded) and replacement policy (nil defaults to
// LRU). Peer tables are created lazily as inserts from new nodes arrive.
func New(self uint32, capacity int, policy replacement.Policy) *Directory {
	if policy == nil {
		policy = replacement.MustNew(replacement.LRU)
	}
	d := &Directory{
		self:        self,
		tables:      make(map[uint32]*table),
		policy:      policy,
		capacity:    capacity,
		peerVers:    make(map[uint32]uint64),
		quarantined: make(map[uint32]bool),
	}
	d.tables[self] = newTable()
	for i := range d.holders {
		d.holders[i].m = make(map[string][]uint32)
	}
	return d
}

// OnUpdate registers fn to observe every versioned local-table mutation
// (insert, replace, delete, eviction, expiry). fn runs with the local-table
// lock held, in strict version order — this is what lets the cluster layer
// enqueue broadcasts in version order — so it must be fast and must not call
// back into the Directory. Set it before the directory sees concurrent use.
func (d *Directory) OnUpdate(fn func(SyncOp)) {
	d.localMu.Lock()
	d.onUpdate = fn
	d.localMu.Unlock()
}

// record logs one local mutation. Callers must hold localMu.
func (d *Directory) record(del bool, e Entry) {
	d.version++
	op := SyncOp{Version: d.version, Delete: del, Entry: e}
	if len(d.journal) >= 2*journalLimit {
		// Amortized compaction: keep the newest journalLimit ops in place.
		n := copy(d.journal, d.journal[len(d.journal)-journalLimit:])
		d.journal = d.journal[:n]
	}
	d.journal = append(d.journal, op)
	if d.onUpdate != nil {
		d.onUpdate(op)
	}
}

// Self returns the owning node's ID.
func (d *Directory) Self() uint32 { return d.self }

// Capacity returns the local table's entry capacity (<=0 means unbounded).
func (d *Directory) Capacity() int { return d.capacity }

func (d *Directory) tableFor(node uint32, create bool) *table {
	d.mu.RLock()
	t := d.tables[node]
	d.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t = d.tables[node]; t == nil {
		t = newTable()
		d.tables[node] = t
	}
	return t
}

// SetRing installs a consistent-hash placement resolver and switches Lookup
// to ring placement: the local table is still consulted first (it is the
// ground truth for what this node holds), but instead of scanning replicated
// peer tables, a key that resolves to another live node returns a synthetic
// entry naming that owner. resolve should consult the current ring on every
// call so membership changes take effect without re-registration. A nil
// resolve restores the paper's full-replication lookup.
func (d *Directory) SetRing(resolve func(key string) (owner uint32, ok bool)) {
	d.placeMu.Lock()
	d.place = resolve
	d.placeMu.Unlock()
}

// resolver returns the installed placement resolver, or nil in replicate mode.
func (d *Directory) resolver() func(string) (uint32, bool) {
	d.placeMu.RLock()
	defer d.placeMu.RUnlock()
	return d.place
}

// Lookup searches for key, checking the local table first (a local hit
// avoids a network round trip). It returns the entry copy and whether it was
// found. Expired entries are treated as absent.
//
// In replicate mode (the paper's design) every peer table is scanned. In
// ring mode (SetRing) placement is deterministic: the only other node that
// can hold the key is its ring owner, so the lookup is a pure hash — no peer
// tables, no per-peer metadata. A quarantined owner reads as a miss, exactly
// like a quarantined table in replicate mode.
func (d *Directory) Lookup(key string, now time.Time) (Entry, bool) {
	if resolve := d.resolver(); resolve != nil {
		if e, ok := d.tableFor(d.self, false).lookup(key, now); ok {
			return e, true
		}
		owner, ok := resolve(key)
		if !ok || owner == d.self {
			// Unplaceable (empty ring) or ours-but-absent: a plain miss.
			return Entry{}, false
		}
		var holders []uint32
		if d.holderCount.Load() > 0 {
			holders = d.ReplicaHolders(key)
		}
		if d.quarCount.Load() > 0 && d.IsQuarantined(owner) && len(holders) == 0 {
			return Entry{}, false
		}
		return Entry{Key: key, Owner: owner, Holders: holders}, true
	}
	if e, ok := d.tableFor(d.self, false).lookup(key, now); ok {
		return e, true
	}
	d.mu.RLock()
	nodes := make([]uint32, 0, len(d.tables))
	for id := range d.tables {
		if id != d.self {
			nodes = append(nodes, id)
		}
	}
	d.mu.RUnlock()
	// Deterministic probe order keeps experiments reproducible.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	skipQuarantined := d.quarCount.Load() > 0
	for _, id := range nodes {
		if skipQuarantined && d.IsQuarantined(id) {
			// The node is presumed dead: treating its entries as absent up
			// front turns what would be a fetch-and-fail false hit into an
			// ordinary miss served locally.
			continue
		}
		if e, ok := d.tableFor(id, false).lookup(key, now); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// SetQuarantined marks (or unmarks) a remote node's table as quarantined.
// While quarantined, Lookup treats the table as empty; updates and syncs
// still apply so the replica is converged when the quarantine lifts.
// Quarantining the local node is ignored.
func (d *Directory) SetQuarantined(node uint32, quarantined bool) {
	if node == d.self {
		return
	}
	d.quarMu.Lock()
	defer d.quarMu.Unlock()
	if quarantined == d.quarantined[node] {
		return
	}
	if quarantined {
		d.quarantined[node] = true
		d.quarCount.Add(1)
	} else {
		delete(d.quarantined, node)
		d.quarCount.Add(-1)
	}
}

// IsQuarantined reports whether node's table is currently quarantined.
func (d *Directory) IsQuarantined(node uint32) bool {
	d.quarMu.RLock()
	defer d.quarMu.RUnlock()
	return d.quarantined[node]
}

// Quarantined returns the currently quarantined node IDs, ascending.
func (d *Directory) Quarantined() []uint32 {
	d.quarMu.RLock()
	out := make([]uint32, 0, len(d.quarantined))
	for id := range d.quarantined {
		out = append(out, id)
	}
	d.quarMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LookupLocal searches only the local table.
func (d *Directory) LookupLocal(key string, now time.Time) (Entry, bool) {
	return d.tableFor(d.self, false).lookup(key, now)
}

// InsertLocal adds an entry owned by this node, evicting per the replacement
// policy if the local table is at capacity. It returns the evicted keys
// (already removed from the local table) so the caller can delete bodies
// and broadcast deletions. If key is already present its entry is replaced
// in place with no eviction.
func (d *Directory) InsertLocal(e Entry, now time.Time) (evicted []string) {
	e.Owner = d.self
	e.Replica = false
	e.Holders = nil
	if e.Inserted.IsZero() {
		e.Inserted = now
	}
	t := d.tableFor(d.self, true)

	d.localMu.Lock()
	defer d.localMu.Unlock()

	ec := e
	exists, wasReplica := t.insertReporting(&ec)

	if exists && !wasReplica {
		d.policy.Access(e.Key)
		d.record(false, e)
		return nil
	}
	// New key — or one that only existed as a held replica, which the
	// policy has never seen: either way it enters capacity bookkeeping now.
	d.policy.Insert(e.Key, replacement.Meta{Size: e.Size, ExecTime: e.ExecTime})
	d.record(false, e)
	if d.capacity > 0 {
		for d.policy.Len() > d.capacity {
			victim := d.policy.Evict()
			if victim == "" {
				break
			}
			t.remove(victim)
			evicted = append(evicted, victim)
			d.record(true, Entry{Key: victim, Owner: d.self})
		}
	}
	return evicted
}

// InsertLocalReplica installs a replica of a key homed on another ring
// member. Replicas live in the local table (so local and peer fetches serve
// them like owned entries) but bypass the replacement policy and capacity —
// the replication controller bounds how many exist — and are never journaled
// or broadcast: they are serving state, not directory truth.
func (d *Directory) InsertLocalReplica(e Entry, now time.Time) {
	e.Owner = d.self
	e.Replica = true
	e.Holders = nil
	if e.Inserted.IsZero() {
		e.Inserted = now
	}
	ec := e
	d.tableFor(d.self, true).insert(&ec)
}

// RemoveLocalReplica drops a held replica. Entries not marked Replica are
// left alone — the key may have been promoted to an owned entry since — and
// nothing is recorded or broadcast either way.
func (d *Directory) RemoveLocalReplica(key string) bool {
	t := d.tableFor(d.self, false)
	s := t.stripeFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || !e.Replica {
		return false
	}
	delete(s.entries, key)
	return true
}

// PromoteReplica turns a held replica into an ordinary owned entry — used
// when a ring change makes the holder the key's home, so the body it already
// has becomes the authoritative copy. The entry enters the replacement
// policy like a fresh insert; evicted keys are returned as from InsertLocal.
func (d *Directory) PromoteReplica(key string, now time.Time) (evicted []string, ok bool) {
	e, found := d.LookupLocal(key, now)
	if !found || !e.Replica {
		return nil, false
	}
	return d.InsertLocal(e, now), true
}

// TouchLocal records a hit on a locally owned entry: bumps the hit counter
// and informs the replacement policy. The paper has the owning node update
// meta-data statistics after each fetch.
func (d *Directory) TouchLocal(key string) {
	d.tableFor(d.self, false).touch(key)

	d.localMu.Lock()
	d.policy.Access(key)
	d.localMu.Unlock()
}

// RemoveLocal deletes a locally owned entry (TTL expiry or administrative
// invalidation). It reports whether the entry existed. Held replicas are
// dropped too (an invalidation must not leave stale replica bodies behind),
// but without touching the policy or the journal.
func (d *Directory) RemoveLocal(key string) bool {
	if d.RemoveLocalReplica(key) {
		return true
	}
	t := d.tableFor(d.self, false)
	d.localMu.Lock()
	defer d.localMu.Unlock()
	d.policy.Remove(key)
	ok := t.remove(key)
	if ok {
		d.record(true, Entry{Key: key, Owner: d.self})
	}
	return ok
}

// ApplyInsert merges a peer's broadcast insert into that peer's table.
// Inserts claiming to be from this node are ignored (they would bypass
// capacity bookkeeping).
func (d *Directory) ApplyInsert(e Entry, now time.Time) {
	if e.Owner == d.self {
		return
	}
	if e.Inserted.IsZero() {
		e.Inserted = now
	}
	ec := e
	d.tableFor(e.Owner, true).insert(&ec)
}

// ApplyDelete merges a peer's broadcast delete.
func (d *Directory) ApplyDelete(owner uint32, key string) {
	if owner == d.self {
		return
	}
	if t := d.tableFor(owner, false); t != nil {
		t.remove(key)
	}
}

// ExpireLocal removes expired entries from the local table and returns their
// keys so the caller can delete bodies and broadcast deletions. This backs
// the paper's purge daemon, which "wakes up every few seconds and deletes
// expired cache entries".
func (d *Directory) ExpireLocal(now time.Time) []string {
	t := d.tableFor(d.self, false)
	keys := t.expiredKeys(now)
	if len(keys) == 0 {
		return keys
	}
	d.localMu.Lock()
	defer d.localMu.Unlock()
	for _, k := range keys {
		if d.RemoveLocalReplica(k) {
			// Expired replica: drop it silently — the policy never knew it
			// and nothing is broadcast; the holder's controller notices the
			// disappearance and announces the retirement.
			continue
		}
		d.policy.Remove(k)
		if t.remove(k) {
			d.record(true, Entry{Key: k, Owner: d.self})
		}
	}
	return keys
}

// ExpireRemote drops expired entries from the peer tables. No deletions are
// broadcast — every replica prunes its own copies; the owner broadcasts its
// own expiries. It returns the number of entries dropped.
func (d *Directory) ExpireRemote(now time.Time) int {
	d.mu.RLock()
	tables := make(map[uint32]*table, len(d.tables))
	for id, t := range d.tables {
		if id != d.self {
			tables[id] = t
		}
	}
	d.mu.RUnlock()

	dropped := 0
	for _, t := range tables {
		for _, k := range t.expiredKeys(now) {
			if t.remove(k) {
				dropped++
			}
		}
	}
	return dropped
}

// DropPeer discards a departed peer's entire table, along with any
// quarantine flag on it — a node that later returns under the same ID starts
// from a clean slate.
func (d *Directory) DropPeer(node uint32) {
	if node == d.self {
		return
	}
	d.mu.Lock()
	delete(d.tables, node)
	d.mu.Unlock()
	d.peerMu.Lock()
	delete(d.peerVers, node)
	d.peerMu.Unlock()
	d.SetQuarantined(node, false)
}

// Version returns the local table's current update version.
func (d *Directory) Version() uint64 {
	d.localMu.Lock()
	defer d.localMu.Unlock()
	return d.version
}

// SyncSince assembles the catch-up needed to bring a replica that last saw
// version since up to date with the local table. When the journal still
// covers the gap it returns an ordered delta (full=false); when the replica
// is too far behind — or has never seen this node (since 0), or claims a
// version from a previous incarnation (since beyond the current version) —
// it returns a full snapshot of live local entries as insert ops
// (full=true). ok=false means the replica is already current and nothing
// needs to be sent.
func (d *Directory) SyncSince(since uint64) (ops []SyncOp, version uint64, full, ok bool) {
	d.localMu.Lock()
	defer d.localMu.Unlock()
	cur := d.version
	if since == cur {
		return nil, cur, false, false
	}
	if since != 0 && since < cur {
		if gap := cur - since; gap <= uint64(len(d.journal)) {
			start := len(d.journal) - int(gap)
			ops = append([]SyncOp(nil), d.journal[start:]...)
			return ops, cur, false, true
		}
	}
	// Full snapshot. Taking stripe read locks under localMu follows the
	// same lock order as InsertLocal (localMu, then stripes).
	snap := d.tableFor(d.self, false).snapshot()
	ops = make([]SyncOp, len(snap))
	for i, e := range snap {
		ops[i] = SyncOp{Entry: e}
	}
	return ops, cur, true, true
}

// PeerVersion returns the highest update version applied from owner's table
// (0 when owner is unknown or unversioned).
func (d *Directory) PeerVersion(owner uint32) uint64 {
	d.peerMu.Lock()
	defer d.peerMu.Unlock()
	return d.peerVers[owner]
}

// AdvancePeerVersion records that owner's updates through v have been
// applied. It never moves the recorded version backwards — late-arriving
// batches that were already covered by a sync must not regress it.
func (d *Directory) AdvancePeerVersion(owner uint32, v uint64) {
	if v == 0 || owner == d.self {
		return
	}
	d.peerMu.Lock()
	if v > d.peerVers[owner] {
		d.peerVers[owner] = v
	}
	d.peerMu.Unlock()
}

// ApplySync applies an anti-entropy catch-up for owner's table. With
// full=true the whole replica is replaced by the snapshot (clearing any
// stale entries the sender no longer knows about) and the recorded peer
// version is reset to version outright; otherwise ops is an ordered delta
// applied on top of the current replica and the version only advances.
func (d *Directory) ApplySync(owner uint32, full bool, ops []SyncOp, version uint64, now time.Time) {
	if owner == d.self {
		return
	}
	if full {
		t := newTable()
		for _, op := range ops {
			if op.Delete {
				continue
			}
			e := op.Entry
			e.Owner = owner
			if e.Inserted.IsZero() {
				e.Inserted = now
			}
			ec := e
			t.insert(&ec)
		}
		d.mu.Lock()
		d.tables[owner] = t
		d.mu.Unlock()
		d.peerMu.Lock()
		d.peerVers[owner] = version
		d.peerMu.Unlock()
		return
	}
	for _, op := range ops {
		if op.Delete {
			d.ApplyDelete(owner, op.Entry.Key)
		} else {
			e := op.Entry
			e.Owner = owner
			d.ApplyInsert(e, now)
		}
	}
	d.AdvancePeerVersion(owner, version)
}

// LocalLen reports the number of entries in the local table.
func (d *Directory) LocalLen() int { return d.tableFor(d.self, false).len() }

// TotalLen reports entries across all tables.
func (d *Directory) TotalLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, t := range d.tables {
		n += t.len()
	}
	return n
}

// Nodes returns the IDs of all nodes with a table, ascending.
func (d *Directory) Nodes() []uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint32, 0, len(d.tables))
	for id := range d.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MisplacedLocal returns copies of the local entries that owns reports as no
// longer placed on this node — the handoff set after a ring change. Held
// replicas are skipped: by definition they are homed elsewhere, and the
// replication controller (not the rebalance) manages their lifetime. The
// scan is read-locked per stripe; entries inserted concurrently are picked
// up by the next rebalance pass.
func (d *Directory) MisplacedLocal(owns func(key string) bool) []Entry {
	var out []Entry
	for _, e := range d.tableFor(d.self, false).snapshot() {
		if !e.Replica && !owns(e.Key) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// --- adaptive-replica holder index ---

// AddReplica records that holder now serves a replica of key (applied from a
// ReplicaEvent broadcast). Adding a holder twice is a no-op.
func (d *Directory) AddReplica(key string, holder uint32) {
	hs := &d.holders[stripeIndex(key)]
	hs.mu.Lock()
	defer hs.mu.Unlock()
	cur := hs.m[key]
	for _, h := range cur {
		if h == holder {
			return
		}
	}
	if len(cur) == 0 {
		d.holderCount.Add(1)
	}
	hs.m[key] = append(cur, holder)
}

// RemoveReplica records that holder no longer serves a replica of key.
func (d *Directory) RemoveReplica(key string, holder uint32) {
	hs := &d.holders[stripeIndex(key)]
	hs.mu.Lock()
	defer hs.mu.Unlock()
	cur := hs.m[key]
	for i, h := range cur {
		if h != holder {
			continue
		}
		cur = append(cur[:i], cur[i+1:]...)
		if len(cur) == 0 {
			delete(hs.m, key)
			d.holderCount.Add(-1)
		} else {
			hs.m[key] = cur
		}
		return
	}
}

// ReplicaHolders returns a copy of the holder set for key (nil when the key
// is unreplicated).
func (d *Directory) ReplicaHolders(key string) []uint32 {
	hs := &d.holders[stripeIndex(key)]
	hs.mu.RLock()
	defer hs.mu.RUnlock()
	cur := hs.m[key]
	if len(cur) == 0 {
		return nil
	}
	return append([]uint32(nil), cur...)
}

// DropReplicaHolder removes node from every holder set — the failure
// detector (via ring eviction) or a graceful leave declared it gone. The
// surviving copies, home included, keep serving untouched; no quarantine.
// It returns how many keys lost a holder.
func (d *Directory) DropReplicaHolder(node uint32) int {
	if d.holderCount.Load() == 0 {
		return 0
	}
	dropped := 0
	for i := range d.holders {
		hs := &d.holders[i]
		hs.mu.Lock()
		for key, cur := range hs.m {
			for j, h := range cur {
				if h != node {
					continue
				}
				cur = append(cur[:j], cur[j+1:]...)
				dropped++
				if len(cur) == 0 {
					delete(hs.m, key)
					d.holderCount.Add(-1)
				} else {
					hs.m[key] = cur
				}
				break
			}
		}
		hs.mu.Unlock()
	}
	return dropped
}

// ReplicatedKeys reports how many keys currently have at least one live
// replica holder in this node's view.
func (d *Directory) ReplicatedKeys() int { return int(d.holderCount.Load()) }

// SnapshotLocal returns copies of all local entries, sorted by key, for
// inspection and tests.
func (d *Directory) SnapshotLocal() []Entry {
	out := d.tableFor(d.self, false).snapshot()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
