// Package directory implements Swala's replicated global cache directory.
// Every node keeps one table per cluster node; each table records what is
// cached at the corresponding node. The paper's intra-node consistency
// protocol locks at table granularity with read/write locks — one lock per
// directory would serialize lookups, per-entry locks would cost a
// lock/unlock pair per probed entry. This implementation goes one step
// further along the same axis: each table is hash-striped into a fixed
// number of shards, each with its own RW lock, so that concurrent writers
// to the same table (inserts racing touches racing expiry) stop
// serializing too. Readers and writers of different keys proceed fully in
// parallel; the paper's argument (coarser = contention, finer = overhead)
// picks the stripe count as the middle ground.
//
// The directory stores meta-data only. The local table additionally enforces
// a capacity (in entries, as in the paper's experiments with cache sizes
// 2000 and 20) through a pluggable replacement policy; evictions are
// reported to the caller so the cache manager can delete the stored body and
// broadcast the deletion.
package directory

import (
	"sort"
	"sync"
	"time"

	"repro/internal/replacement"
)

// Entry is the meta-data for one cached result.
type Entry struct {
	// Key canonically identifies the request (httpmsg.CacheKey form).
	Key string
	// Owner is the node holding the body.
	Owner uint32
	// Size is the body size in bytes.
	Size int64
	// ExecTime is how long the CGI ran to produce the result.
	ExecTime time.Duration
	// Inserted is when the entry was cached.
	Inserted time.Time
	// Expires is the TTL deadline; zero means never expires.
	Expires time.Time
	// Hits counts fetches served from this entry (maintained by the owner).
	Hits int64
}

// Expired reports whether the entry's TTL has passed at time now.
func (e *Entry) Expired(now time.Time) bool {
	return !e.Expires.IsZero() && now.After(e.Expires)
}

// numStripes is the per-table shard count. 32 stripes keep the per-stripe
// maps small and make lock collisions between concurrent accessors of
// different keys unlikely at the goroutine counts the server runs (tens of
// request threads), while the fixed array keeps stripe selection a single
// hash + mask with no allocation.
const numStripes = 32

// stripe is one lock-shard of a table.
type stripe struct {
	mu      sync.RWMutex
	entries map[string]*Entry
}

// table is the per-node portion of the directory, hash-striped so that
// concurrent operations on different keys do not contend on one lock.
type table struct {
	stripes [numStripes]stripe
}

func newTable() *table {
	t := &table{}
	for i := range t.stripes {
		t.stripes[i].entries = make(map[string]*Entry)
	}
	return t
}

// stripeFor selects the shard for key with FNV-1a, inlined to avoid the
// hash.Hash allocation on every directory operation.
func (t *table) stripeFor(key string) *stripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &t.stripes[h%numStripes]
}

func (t *table) lookup(key string, now time.Time) (Entry, bool) {
	s := t.stripeFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok || e.Expired(now) {
		return Entry{}, false
	}
	return *e, true
}

func (t *table) insert(e *Entry) {
	s := t.stripeFor(e.Key)
	s.mu.Lock()
	s.entries[e.Key] = e
	s.mu.Unlock()
}

// insertReporting stores e and reports whether the key was already present
// (the caller's capacity bookkeeping needs to know).
func (t *table) insertReporting(e *Entry) (existed bool) {
	s := t.stripeFor(e.Key)
	s.mu.Lock()
	_, existed = s.entries[e.Key]
	s.entries[e.Key] = e
	s.mu.Unlock()
	return existed
}

// touch bumps the hit counter of key if present.
func (t *table) touch(key string) {
	s := t.stripeFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		e.Hits++
	}
	s.mu.Unlock()
}

func (t *table) remove(key string) bool {
	s := t.stripeFor(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	delete(s.entries, key)
	s.mu.Unlock()
	return ok
}

func (t *table) len() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

func (t *table) expiredKeys(now time.Time) []string {
	var out []string
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for k, e := range s.entries {
			if e.Expired(now) {
				out = append(out, k)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// snapshot returns copies of all entries in the table.
func (t *table) snapshot() []Entry {
	var out []Entry
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, *e)
		}
		s.mu.RUnlock()
	}
	return out
}

// Directory is one node's replica of the global cache directory.
// All methods are safe for concurrent use.
type Directory struct {
	self uint32

	mu     sync.RWMutex // guards the tables map itself (node set changes)
	tables map[uint32]*table

	// localMu guards capacity bookkeeping (policy + capacity) for the local
	// table. The policy structures are not internally synchronized.
	localMu  sync.Mutex
	policy   replacement.Policy
	capacity int
}

// New creates a directory for node self with the given local capacity (in
// entries; <=0 means unbounded) and replacement policy (nil defaults to
// LRU). Peer tables are created lazily as inserts from new nodes arrive.
func New(self uint32, capacity int, policy replacement.Policy) *Directory {
	if policy == nil {
		policy = replacement.MustNew(replacement.LRU)
	}
	d := &Directory{
		self:     self,
		tables:   make(map[uint32]*table),
		policy:   policy,
		capacity: capacity,
	}
	d.tables[self] = newTable()
	return d
}

// Self returns the owning node's ID.
func (d *Directory) Self() uint32 { return d.self }

// Capacity returns the local table's entry capacity (<=0 means unbounded).
func (d *Directory) Capacity() int { return d.capacity }

func (d *Directory) tableFor(node uint32, create bool) *table {
	d.mu.RLock()
	t := d.tables[node]
	d.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t = d.tables[node]; t == nil {
		t = newTable()
		d.tables[node] = t
	}
	return t
}

// Lookup searches all tables for key, checking the local table first (a
// local hit avoids a network round trip). It returns the entry copy and
// whether it was found. Expired entries are treated as absent.
func (d *Directory) Lookup(key string, now time.Time) (Entry, bool) {
	if e, ok := d.tableFor(d.self, false).lookup(key, now); ok {
		return e, true
	}
	d.mu.RLock()
	nodes := make([]uint32, 0, len(d.tables))
	for id := range d.tables {
		if id != d.self {
			nodes = append(nodes, id)
		}
	}
	d.mu.RUnlock()
	// Deterministic probe order keeps experiments reproducible.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, id := range nodes {
		if e, ok := d.tableFor(id, false).lookup(key, now); ok {
			return e, true
		}
	}
	return Entry{}, false
}

// LookupLocal searches only the local table.
func (d *Directory) LookupLocal(key string, now time.Time) (Entry, bool) {
	return d.tableFor(d.self, false).lookup(key, now)
}

// InsertLocal adds an entry owned by this node, evicting per the replacement
// policy if the local table is at capacity. It returns the evicted keys
// (already removed from the local table) so the caller can delete bodies
// and broadcast deletions. If key is already present its entry is replaced
// in place with no eviction.
func (d *Directory) InsertLocal(e Entry, now time.Time) (evicted []string) {
	e.Owner = d.self
	if e.Inserted.IsZero() {
		e.Inserted = now
	}
	t := d.tableFor(d.self, true)

	d.localMu.Lock()
	defer d.localMu.Unlock()

	ec := e
	exists := t.insertReporting(&ec)

	if exists {
		d.policy.Access(e.Key)
		return nil
	}
	d.policy.Insert(e.Key, replacement.Meta{Size: e.Size, ExecTime: e.ExecTime})
	if d.capacity > 0 {
		for d.policy.Len() > d.capacity {
			victim := d.policy.Evict()
			if victim == "" {
				break
			}
			t.remove(victim)
			evicted = append(evicted, victim)
		}
	}
	return evicted
}

// TouchLocal records a hit on a locally owned entry: bumps the hit counter
// and informs the replacement policy. The paper has the owning node update
// meta-data statistics after each fetch.
func (d *Directory) TouchLocal(key string) {
	d.tableFor(d.self, false).touch(key)

	d.localMu.Lock()
	d.policy.Access(key)
	d.localMu.Unlock()
}

// RemoveLocal deletes a locally owned entry (TTL expiry or administrative
// invalidation). It reports whether the entry existed.
func (d *Directory) RemoveLocal(key string) bool {
	d.localMu.Lock()
	d.policy.Remove(key)
	d.localMu.Unlock()
	return d.tableFor(d.self, false).remove(key)
}

// ApplyInsert merges a peer's broadcast insert into that peer's table.
// Inserts claiming to be from this node are ignored (they would bypass
// capacity bookkeeping).
func (d *Directory) ApplyInsert(e Entry, now time.Time) {
	if e.Owner == d.self {
		return
	}
	if e.Inserted.IsZero() {
		e.Inserted = now
	}
	ec := e
	d.tableFor(e.Owner, true).insert(&ec)
}

// ApplyDelete merges a peer's broadcast delete.
func (d *Directory) ApplyDelete(owner uint32, key string) {
	if owner == d.self {
		return
	}
	if t := d.tableFor(owner, false); t != nil {
		t.remove(key)
	}
}

// ExpireLocal removes expired entries from the local table and returns their
// keys so the caller can delete bodies and broadcast deletions. This backs
// the paper's purge daemon, which "wakes up every few seconds and deletes
// expired cache entries".
func (d *Directory) ExpireLocal(now time.Time) []string {
	t := d.tableFor(d.self, false)
	keys := t.expiredKeys(now)
	for _, k := range keys {
		d.localMu.Lock()
		d.policy.Remove(k)
		d.localMu.Unlock()
		t.remove(k)
	}
	return keys
}

// ExpireRemote drops expired entries from the peer tables. No deletions are
// broadcast — every replica prunes its own copies; the owner broadcasts its
// own expiries. It returns the number of entries dropped.
func (d *Directory) ExpireRemote(now time.Time) int {
	d.mu.RLock()
	tables := make(map[uint32]*table, len(d.tables))
	for id, t := range d.tables {
		if id != d.self {
			tables[id] = t
		}
	}
	d.mu.RUnlock()

	dropped := 0
	for _, t := range tables {
		for _, k := range t.expiredKeys(now) {
			if t.remove(k) {
				dropped++
			}
		}
	}
	return dropped
}

// DropPeer discards a departed peer's entire table.
func (d *Directory) DropPeer(node uint32) {
	if node == d.self {
		return
	}
	d.mu.Lock()
	delete(d.tables, node)
	d.mu.Unlock()
}

// LocalLen reports the number of entries in the local table.
func (d *Directory) LocalLen() int { return d.tableFor(d.self, false).len() }

// TotalLen reports entries across all tables.
func (d *Directory) TotalLen() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for _, t := range d.tables {
		n += t.len()
	}
	return n
}

// Nodes returns the IDs of all nodes with a table, ascending.
func (d *Directory) Nodes() []uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint32, 0, len(d.tables))
	for id := range d.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SnapshotLocal returns copies of all local entries, sorted by key, for
// inspection and tests.
func (d *Directory) SnapshotLocal() []Entry {
	out := d.tableFor(d.self, false).snapshot()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
