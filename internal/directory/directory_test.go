package directory

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/replacement"
)

var t0 = time.Unix(1_000_000, 0)

func entry(key string, owner uint32) Entry {
	return Entry{Key: key, Owner: owner, Size: 100, ExecTime: time.Second}
}

func TestInsertAndLookupLocal(t *testing.T) {
	d := New(1, 0, nil)
	d.InsertLocal(entry("GET /a", 1), t0)
	e, ok := d.Lookup("GET /a", t0)
	if !ok {
		t.Fatal("entry not found")
	}
	if e.Owner != 1 || e.Key != "GET /a" {
		t.Fatalf("entry = %+v", e)
	}
	if _, ok := d.Lookup("GET /missing", t0); ok {
		t.Fatal("found a never-inserted key")
	}
}

func TestLookupPrefersLocal(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /a", 2), t0)
	d.InsertLocal(entry("GET /a", 1), t0)
	e, ok := d.Lookup("GET /a", t0)
	if !ok || e.Owner != 1 {
		t.Fatalf("Lookup = %+v ok=%v, want local owner 1", e, ok)
	}
}

func TestLookupFindsRemote(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /r", 3), t0)
	e, ok := d.Lookup("GET /r", t0)
	if !ok || e.Owner != 3 {
		t.Fatalf("Lookup = %+v ok=%v, want owner 3", e, ok)
	}
	if _, ok := d.LookupLocal("GET /r", t0); ok {
		t.Fatal("LookupLocal must not see remote entries")
	}
}

func TestApplyInsertFromSelfIgnored(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /self", 1), t0)
	if _, ok := d.Lookup("GET /self", t0); ok {
		t.Fatal("self-originated ApplyInsert must be ignored")
	}
}

func TestApplyDelete(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("GET /r", 2), t0)
	d.ApplyDelete(2, "GET /r")
	if _, ok := d.Lookup("GET /r", t0); ok {
		t.Fatal("entry survived ApplyDelete")
	}
	// Deleting from an unknown node or unknown key must not panic.
	d.ApplyDelete(9, "GET /x")
	d.ApplyDelete(1, "GET /x") // self: ignored
}

func TestCapacityEviction(t *testing.T) {
	d := New(1, 2, replacement.MustNew(replacement.LRU))
	if ev := d.InsertLocal(entry("a", 1), t0); len(ev) != 0 {
		t.Fatalf("evicted %v on first insert", ev)
	}
	d.InsertLocal(entry("b", 1), t0)
	ev := d.InsertLocal(entry("c", 1), t0)
	if len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", ev)
	}
	if d.LocalLen() != 2 {
		t.Fatalf("LocalLen = %d, want 2", d.LocalLen())
	}
	if _, ok := d.Lookup("a", t0); ok {
		t.Fatal("evicted entry still visible")
	}
}

func TestCapacityEvictionRespectsAccess(t *testing.T) {
	d := New(1, 2, replacement.MustNew(replacement.LRU))
	d.InsertLocal(entry("a", 1), t0)
	d.InsertLocal(entry("b", 1), t0)
	d.TouchLocal("a") // b becomes LRU victim
	ev := d.InsertLocal(entry("c", 1), t0)
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", ev)
	}
}

func TestReinsertSameKeyNoEviction(t *testing.T) {
	d := New(1, 2, nil)
	d.InsertLocal(entry("a", 1), t0)
	d.InsertLocal(entry("b", 1), t0)
	if ev := d.InsertLocal(entry("a", 1), t0); len(ev) != 0 {
		t.Fatalf("reinsert evicted %v", ev)
	}
	if d.LocalLen() != 2 {
		t.Fatalf("LocalLen = %d, want 2", d.LocalLen())
	}
}

func TestUnboundedCapacity(t *testing.T) {
	d := New(1, 0, nil)
	for i := 0; i < 5000; i++ {
		if ev := d.InsertLocal(entry(fmt.Sprintf("k%d", i), 1), t0); len(ev) != 0 {
			t.Fatalf("unbounded directory evicted %v", ev)
		}
	}
	if d.LocalLen() != 5000 {
		t.Fatalf("LocalLen = %d", d.LocalLen())
	}
}

func TestTouchLocalCountsHits(t *testing.T) {
	d := New(1, 0, nil)
	d.InsertLocal(entry("a", 1), t0)
	d.TouchLocal("a")
	d.TouchLocal("a")
	d.TouchLocal("ghost") // must not panic
	snap := d.SnapshotLocal()
	if len(snap) != 1 || snap[0].Hits != 2 {
		t.Fatalf("snapshot = %+v, want hits 2", snap)
	}
}

func TestTTLExpiryInLookup(t *testing.T) {
	d := New(1, 0, nil)
	e := entry("a", 1)
	e.Expires = t0.Add(time.Minute)
	d.InsertLocal(e, t0)

	if _, ok := d.Lookup("a", t0.Add(30*time.Second)); !ok {
		t.Fatal("unexpired entry not found")
	}
	if _, ok := d.Lookup("a", t0.Add(2*time.Minute)); ok {
		t.Fatal("expired entry returned by Lookup")
	}
}

func TestExpireLocal(t *testing.T) {
	d := New(1, 0, nil)
	fresh := entry("fresh", 1)
	fresh.Expires = t0.Add(time.Hour)
	stale1 := entry("stale1", 1)
	stale1.Expires = t0.Add(time.Minute)
	stale2 := entry("stale2", 1)
	stale2.Expires = t0.Add(2 * time.Minute)
	forever := entry("forever", 1) // zero Expires: never expires
	for _, e := range []Entry{fresh, stale1, stale2, forever} {
		d.InsertLocal(e, t0)
	}

	keys := d.ExpireLocal(t0.Add(10 * time.Minute))
	if len(keys) != 2 || keys[0] != "stale1" || keys[1] != "stale2" {
		t.Fatalf("expired = %v, want [stale1 stale2]", keys)
	}
	if d.LocalLen() != 2 {
		t.Fatalf("LocalLen = %d, want 2", d.LocalLen())
	}
	if _, ok := d.Lookup("forever", t0.Add(100*time.Hour)); !ok {
		t.Fatal("zero-expiry entry must never expire")
	}
}

func TestExpireLocalRemovesFromPolicy(t *testing.T) {
	d := New(1, 2, replacement.MustNew(replacement.LRU))
	stale := entry("stale", 1)
	stale.Expires = t0.Add(time.Second)
	d.InsertLocal(stale, t0)
	d.ExpireLocal(t0.Add(time.Minute))
	// Capacity 2: if the policy leaked "stale", these three inserts would
	// evict prematurely.
	d.InsertLocal(entry("a", 1), t0)
	if ev := d.InsertLocal(entry("b", 1), t0); len(ev) != 0 {
		t.Fatalf("policy leaked expired entry: evicted %v", ev)
	}
}

func TestRemoveLocal(t *testing.T) {
	d := New(1, 0, nil)
	d.InsertLocal(entry("a", 1), t0)
	if !d.RemoveLocal("a") {
		t.Fatal("RemoveLocal returned false for existing key")
	}
	if d.RemoveLocal("a") {
		t.Fatal("RemoveLocal returned true for removed key")
	}
	if _, ok := d.Lookup("a", t0); ok {
		t.Fatal("removed entry still visible")
	}
}

func TestDropPeer(t *testing.T) {
	d := New(1, 0, nil)
	d.ApplyInsert(entry("r1", 2), t0)
	d.ApplyInsert(entry("r2", 2), t0)
	d.InsertLocal(entry("l", 1), t0)
	if d.TotalLen() != 3 {
		t.Fatalf("TotalLen = %d, want 3", d.TotalLen())
	}
	d.DropPeer(2)
	if d.TotalLen() != 1 {
		t.Fatalf("TotalLen after DropPeer = %d, want 1", d.TotalLen())
	}
	d.DropPeer(1) // dropping self is ignored
	if d.LocalLen() != 1 {
		t.Fatal("DropPeer(self) must be a no-op")
	}
}

func TestNodes(t *testing.T) {
	d := New(5, 0, nil)
	d.ApplyInsert(entry("a", 2), t0)
	d.ApplyInsert(entry("b", 9), t0)
	got := d.Nodes()
	want := []uint32{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	d := New(1, 100, replacement.MustNew(replacement.LRU))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%150)
				switch i % 5 {
				case 0, 1:
					d.InsertLocal(entry(key, 1), t0)
				case 2:
					d.Lookup(key, t0)
				case 3:
					d.TouchLocal(key)
				case 4:
					d.ApplyInsert(entry(key, uint32(2+w%3)), t0)
				}
			}
		}(w)
	}
	wg.Wait()
	if d.LocalLen() > 100 {
		t.Fatalf("LocalLen = %d exceeds capacity 100", d.LocalLen())
	}
}

// Property: with capacity c and any insert sequence, LocalLen never exceeds
// c and the evicted set plus resident set equals the inserted set.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(rawKeys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%20) + 1
		d := New(1, capacity, replacement.MustNew(replacement.FIFO))
		inserted := make(map[string]bool)
		evicted := make(map[string]bool)
		for _, rk := range rawKeys {
			key := fmt.Sprintf("k%d", rk)
			inserted[key] = true
			for _, ev := range d.InsertLocal(entry(key, 1), t0) {
				evicted[ev] = true
			}
			if d.LocalLen() > capacity {
				return false
			}
		}
		resident := make(map[string]bool)
		for _, e := range d.SnapshotLocal() {
			resident[e.Key] = true
		}
		for k := range inserted {
			if !resident[k] && !evicted[k] {
				return false
			}
		}
		for k := range resident {
			if evicted[k] {
				// A key can be re-inserted after eviction; then it may be in
				// both sets. Accept that but require it be inserted.
				if !inserted[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryExpired(t *testing.T) {
	e := Entry{}
	if e.Expired(t0.Add(1000 * time.Hour)) {
		t.Fatal("zero-expiry entry reported expired")
	}
	e.Expires = t0
	if e.Expired(t0) {
		t.Fatal("entry expired exactly at deadline (should expire only after)")
	}
	if !e.Expired(t0.Add(time.Nanosecond)) {
		t.Fatal("entry not expired past deadline")
	}
}
