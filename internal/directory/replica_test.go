package directory

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"
)

func TestReplicaEntriesBypassPolicyAndJournal(t *testing.T) {
	d := New(1, 2, nil) // capacity 2: replicas must not consume it
	r := ring.New([]uint32{1, 2, 3}, 32)
	d.SetRing(func(key string) (uint32, bool) { return r.Owner(key) })
	now := time.Now()

	d.InsertLocal(Entry{Key: "GET /a", Size: 1}, now)
	d.InsertLocal(Entry{Key: "GET /b", Size: 1}, now)
	d.InsertLocalReplica(Entry{Key: "GET /r1", Size: 1}, now)
	d.InsertLocalReplica(Entry{Key: "GET /r2", Size: 1}, now)

	if e, ok := d.LookupLocal("GET /r1", now); !ok || !e.Replica {
		t.Fatalf("replica entry = %+v, %v", e, ok)
	}
	// Owned entries survived: replicas sit outside the replacement policy.
	for _, k := range []string{"GET /a", "GET /b"} {
		if e, ok := d.LookupLocal(k, now); !ok || e.Replica {
			t.Fatalf("owned entry %q = %+v, %v", k, e, ok)
		}
	}

	// Promotion re-enters the owned path (now subject to capacity).
	if _, ok := d.PromoteReplica("GET /r1", now); !ok {
		t.Fatal("promotion failed")
	}
	if e, _ := d.LookupLocal("GET /r1", now); e.Replica {
		t.Fatal("promoted entry still flagged replica")
	}
	// Removing a promoted entry via the replica path must refuse.
	if d.RemoveLocalReplica("GET /r1") {
		t.Fatal("RemoveLocalReplica removed an owned entry")
	}
	if !d.RemoveLocalReplica("GET /r2") {
		t.Fatal("RemoveLocalReplica refused a replica entry")
	}
}

func TestReplicaHolderIndex(t *testing.T) {
	d := New(1, 0, nil)
	r := ring.New([]uint32{1, 2, 3, 4}, 32)
	d.SetRing(func(key string) (uint32, bool) { return r.Owner(key) })
	now := time.Now()

	// Find a key owned elsewhere so Lookup resolves through the ring.
	key := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("GET /k%d", i)
		if o, _ := r.Owner(k); o != 1 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no remote-owned key found")
	}

	d.AddReplica(key, 3)
	d.AddReplica(key, 4)
	d.AddReplica(key, 3) // idempotent
	e, ok := d.Lookup(key, now)
	if !ok || len(e.Holders) != 2 {
		t.Fatalf("lookup = %+v, %v; want 2 holders", e, ok)
	}
	if d.ReplicatedKeys() != 1 {
		t.Fatalf("ReplicatedKeys = %d", d.ReplicatedKeys())
	}

	d.RemoveReplica(key, 3)
	if hs := d.ReplicaHolders(key); len(hs) != 1 || hs[0] != 4 {
		t.Fatalf("holders after remove = %v", hs)
	}
	if n := d.DropReplicaHolder(4); n != 1 {
		t.Fatalf("DropReplicaHolder = %d", n)
	}
	if d.ReplicatedKeys() != 0 {
		t.Fatalf("ReplicatedKeys after drop = %d", d.ReplicatedKeys())
	}
	if e, ok := d.Lookup(key, now); !ok || len(e.Holders) != 0 {
		t.Fatalf("lookup after drop = %+v, %v; want ring owner, no holders", e, ok)
	}
}

// TestReplicaHolderIndexRace drives holder add/remove/drop, replica entry
// insert/remove/promote, and ring lookups concurrently; run under -race it
// guards the lock discipline of the holder stripes and the replica flag.
func TestReplicaHolderIndexRace(t *testing.T) {
	d := New(1, 0, nil)
	r := ring.New([]uint32{1, 2, 3, 4}, 32)
	d.SetRing(func(key string) (uint32, bool) { return r.Owner(key) })
	now := time.Now()

	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("GET /race%d", i)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	spin := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					f(i)
				}
			}
		}()
	}

	spin(func(i int) { d.AddReplica(keys[i%len(keys)], uint32(2+i%3)) })
	spin(func(i int) { d.RemoveReplica(keys[i%len(keys)], uint32(2+i%3)) })
	spin(func(i int) { d.DropReplicaHolder(uint32(2 + i%3)) })
	spin(func(i int) { d.Lookup(keys[i%len(keys)], now) })
	spin(func(i int) { d.ReplicaHolders(keys[i%len(keys)]) })
	spin(func(i int) {
		k := keys[i%len(keys)]
		d.InsertLocalReplica(Entry{Key: k, Size: 1}, now)
		if i%7 == 0 {
			d.PromoteReplica(k, now)
			d.RemoveLocal(k)
		} else {
			d.RemoveLocalReplica(k)
		}
	})

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
}
