package directory

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ring"
)

func TestRingLookupRoutesToOwner(t *testing.T) {
	d := New(1, 0, nil)
	r := ring.New([]uint32{1, 2, 3}, 32)
	d.SetRing(func(key string) (uint32, bool) { return r.Owner(key) })
	now := time.Now()

	// A locally cached entry wins regardless of placement.
	d.InsertLocal(Entry{Key: "GET /mine", Size: 10}, now)
	if e, ok := d.Lookup("GET /mine", now); !ok || e.Owner != 1 {
		t.Fatalf("local entry not found: %+v %v", e, ok)
	}

	// An absent key resolves through the ring: keys owned elsewhere come back
	// as synthetic entries naming the owner; keys owned here are plain misses.
	sawRemote := false
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("GET /k%d", i)
		owner, _ := r.Owner(key)
		e, ok := d.Lookup(key, now)
		if owner == 1 {
			if ok {
				t.Fatalf("self-owned absent key %q reported found: %+v", key, e)
			}
			continue
		}
		sawRemote = true
		if !ok || e.Owner != owner {
			t.Fatalf("key %q: got (%+v, %v), want owner %d", key, e, ok, owner)
		}
	}
	if !sawRemote {
		t.Fatal("no key resolved to a remote owner; test is vacuous")
	}
}

func TestRingLookupQuarantinedOwnerIsMiss(t *testing.T) {
	d := New(1, 0, nil)
	r := ring.New([]uint32{1, 2}, 32)
	d.SetRing(func(key string) (uint32, bool) { return r.Owner(key) })
	now := time.Now()

	var remoteKey string
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("GET /q%d", i)
		if o, _ := r.Owner(k); o == 2 {
			remoteKey = k
			break
		}
	}
	if remoteKey == "" {
		t.Fatal("no key owned by node 2")
	}
	if _, ok := d.Lookup(remoteKey, now); !ok {
		t.Fatal("remote-owned key should resolve while owner is healthy")
	}
	d.SetQuarantined(2, true)
	if _, ok := d.Lookup(remoteKey, now); ok {
		t.Fatal("quarantined owner must read as a miss")
	}
	d.SetQuarantined(2, false)
	if _, ok := d.Lookup(remoteKey, now); !ok {
		t.Fatal("lifting quarantine must restore routing")
	}
}

func TestRingLookupEmptyRingIsMiss(t *testing.T) {
	d := New(1, 0, nil)
	empty := ring.New(nil, 32)
	d.SetRing(func(key string) (uint32, bool) { return empty.Owner(key) })
	if _, ok := d.Lookup("GET /x", time.Now()); ok {
		t.Fatal("empty ring resolved an owner")
	}
	// Clearing the resolver restores replicated lookup.
	d.SetRing(nil)
	now := time.Now()
	d.ApplyInsert(Entry{Key: "GET /x", Owner: 2}, now)
	if e, ok := d.Lookup("GET /x", now); !ok || e.Owner != 2 {
		t.Fatalf("replicated lookup broken after SetRing(nil): %+v %v", e, ok)
	}
}

func TestMisplacedLocal(t *testing.T) {
	d := New(1, 0, nil)
	now := time.Now()
	for i := 0; i < 50; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("GET /m%d", i), Size: 1}, now)
	}
	r := ring.New([]uint32{1, 2, 3, 4}, 32)
	owns := func(key string) bool {
		o, ok := r.Owner(key)
		return ok && o == 1
	}
	moved := d.MisplacedLocal(owns)
	if len(moved) == 0 || len(moved) == 50 {
		t.Fatalf("misplaced count %d implausible for a 4-node ring", len(moved))
	}
	for _, e := range moved {
		if owns(e.Key) {
			t.Fatalf("entry %q reported misplaced but is owned here", e.Key)
		}
	}
	// Every local entry is either owned or reported misplaced.
	if got := len(d.MisplacedLocal(func(string) bool { return false })); got != 50 {
		t.Fatalf("full misplacement scan returned %d of 50", got)
	}
}
