package directory

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/replacement"
)

func benchDirectory(entries int) *Directory {
	d := New(1, 0, nil)
	now := time.Unix(0, 0)
	for i := 0; i < entries; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("GET /cgi-bin/q?id=%d", i), Size: 2048,
			ExecTime: time.Second}, now)
	}
	// Populate two peer tables too, as a real node's directory would have.
	for peer := uint32(2); peer <= 3; peer++ {
		for i := 0; i < entries; i++ {
			d.ApplyInsert(Entry{Key: fmt.Sprintf("GET /cgi-bin/p%d?id=%d", peer, i),
				Owner: peer, Size: 2048}, now)
		}
	}
	return d
}

func BenchmarkLookupHitLocal(b *testing.B) {
	d := benchDirectory(2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup("GET /cgi-bin/q?id=999", now); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLookupHitRemote(b *testing.B) {
	d := benchDirectory(2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup("GET /cgi-bin/p3?id=999", now); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	d := benchDirectory(2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup("GET /cgi-bin/absent", now); ok {
			b.Fatal("hit")
		}
	}
}

func BenchmarkInsertWithEviction(b *testing.B) {
	d := New(1, 2000, replacement.MustNew(replacement.LRU))
	now := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("GET /k%d", i), Size: 1024, ExecTime: time.Second}, now)
	}
}

func BenchmarkTouchLocal(b *testing.B) {
	d := benchDirectory(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.TouchLocal("GET /cgi-bin/q?id=42")
	}
}

func BenchmarkConcurrentLookups(b *testing.B) {
	d := benchDirectory(2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000)
			d.Lookup(key, now)
			i++
		}
	})
}
