package directory

// The paper argues for table-granularity locking in the replicated
// directory: one lock for the whole directory causes unacceptable contention
// on lookups, while per-entry locks cost a lock/unlock pair for every probed
// entry. These benchmarks reproduce that design argument by comparing the
// implemented locking (per-table, hash-striped into shards) against a
// simulated single global lock under read-heavy and mixed concurrent
// workloads. The striped benchmarks pin parallelism at 8 goroutines to
// match the acceptance target ("improved throughput at >=8 goroutines").

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// globalLockDir wraps a Directory behind one exclusive lock, simulating the
// "lock the whole directory for each access" alternative.
type globalLockDir struct {
	mu sync.Mutex
	d  *Directory
}

func (g *globalLockDir) Lookup(key string, now time.Time) (Entry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.d.Lookup(key, now)
}

func populate(d *Directory, entries int) {
	now := time.Unix(0, 0)
	for i := 0; i < entries; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("GET /cgi-bin/q?id=%d", i), Size: 2048}, now)
	}
	for peer := uint32(2); peer <= 8; peer++ {
		for i := 0; i < entries/4; i++ {
			d.ApplyInsert(Entry{Key: fmt.Sprintf("GET /p%d?id=%d", peer, i), Owner: peer, Size: 2048}, now)
		}
	}
}

// BenchmarkLockingTableGranularity measures the implemented design: RW locks
// per table, concurrent readers proceed in parallel.
func BenchmarkLockingTableGranularity(b *testing.B) {
	d := New(1, 0, nil)
	populate(d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Lookup(fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000), now)
			i++
		}
	})
}

// BenchmarkLockingGlobalLock measures the rejected alternative: every lookup
// takes one exclusive directory-wide lock.
func BenchmarkLockingGlobalLock(b *testing.B) {
	g := &globalLockDir{d: New(1, 0, nil)}
	populate(g.d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g.Lookup(fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000), now)
			i++
		}
	})
}

// mixedOp runs the server's real concurrent mix: request threads looking
// keys up while peer broadcast inserts/deletes are applied to peer tables
// (1 apply-insert + 1 apply-delete per 8 ops). A single RW lock per table
// serializes the writes against every reader of that table; with hash
// striping only accessors of the same shard collide. Local-table inserts
// are deliberately excluded — they serialize on the replacement-policy
// bookkeeping lock regardless of table locking.
func mixedOp(d *Directory, i int, now time.Time) {
	switch i % 8 {
	case 0:
		d.ApplyInsert(Entry{Key: fmt.Sprintf("GET /p2?id=%d", i%500), Owner: 2, Size: 2048}, now)
	case 1:
		d.ApplyDelete(3, fmt.Sprintf("GET /p3?id=%d", i%500))
	default:
		d.Lookup(fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000), now)
	}
}

// BenchmarkLockingStripedMixed8 measures the striped implementation under a
// mixed read/write workload at 8 goroutines.
func BenchmarkLockingStripedMixed8(b *testing.B) {
	d := New(1, 0, nil)
	populate(d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mixedOp(d, i, now)
			i++
		}
	})
}

// BenchmarkLockingGlobalMixed8 is the same mixed workload behind one
// exclusive directory-wide lock.
func BenchmarkLockingGlobalMixed8(b *testing.B) {
	g := &globalLockDir{d: New(1, 0, nil)}
	populate(g.d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g.mu.Lock()
			mixedOp(g.d, i, now)
			g.mu.Unlock()
			i++
		}
	})
}
