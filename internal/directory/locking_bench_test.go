package directory

// The paper argues for table-granularity locking in the replicated
// directory: one lock for the whole directory causes unacceptable contention
// on lookups, while per-entry locks cost a lock/unlock pair for every probed
// entry. These benchmarks reproduce that design argument by comparing the
// implemented per-table RW locking against a simulated single global lock
// under a read-heavy concurrent workload.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// globalLockDir wraps a Directory behind one exclusive lock, simulating the
// "lock the whole directory for each access" alternative.
type globalLockDir struct {
	mu sync.Mutex
	d  *Directory
}

func (g *globalLockDir) Lookup(key string, now time.Time) (Entry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.d.Lookup(key, now)
}

func populate(d *Directory, entries int) {
	now := time.Unix(0, 0)
	for i := 0; i < entries; i++ {
		d.InsertLocal(Entry{Key: fmt.Sprintf("GET /cgi-bin/q?id=%d", i), Size: 2048}, now)
	}
	for peer := uint32(2); peer <= 8; peer++ {
		for i := 0; i < entries/4; i++ {
			d.ApplyInsert(Entry{Key: fmt.Sprintf("GET /p%d?id=%d", peer, i), Owner: peer, Size: 2048}, now)
		}
	}
}

// BenchmarkLockingTableGranularity measures the implemented design: RW locks
// per table, concurrent readers proceed in parallel.
func BenchmarkLockingTableGranularity(b *testing.B) {
	d := New(1, 0, nil)
	populate(d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			d.Lookup(fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000), now)
			i++
		}
	})
}

// BenchmarkLockingGlobalLock measures the rejected alternative: every lookup
// takes one exclusive directory-wide lock.
func BenchmarkLockingGlobalLock(b *testing.B) {
	g := &globalLockDir{d: New(1, 0, nil)}
	populate(g.d, 2000)
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g.Lookup(fmt.Sprintf("GET /cgi-bin/q?id=%d", i%2000), now)
			i++
		}
	})
}
