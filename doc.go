// Package repro is a from-scratch Go reproduction of "Cooperative Caching
// of Dynamic Content on a Distributed Web Server" (Holmedahl, Smith, Yang;
// HPDC 1998) — the Swala distributed web server, which caches CGI results on
// disk, replicates the cache directory across cluster nodes, and serves any
// node's cached result to any other node.
//
// The library lives under internal/ (core is the Swala server; the other
// packages are the substrates: HTTP stack, cluster protocol, cache
// directory, replacement policies, workload generators, and the simulated
// baseline servers). Executables are under cmd/, runnable examples under
// examples/, and the benchmark suite that regenerates every table and
// figure of the paper's evaluation is in bench_test.go and cmd/benchsuite.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package repro
