// Command loganalyze reproduces the paper's Section 3 access-log study
// (Table 1) on the calibrated synthetic Alexandria Digital Library trace, or
// on a trace file in the simple "CGI|FILE <key> <service-seconds>" format.
//
// Usage:
//
//	loganalyze                      # synthetic ADL trace, paper thresholds
//	loganalyze -trace access.log    # analyze a simple trace file
//	loganalyze -swala access.log    # analyze a swalad -accesslog file
//	loganalyze -thresholds 0.5,1,2,4,8
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/accesslog"
	"repro/internal/adltrace"
	"repro/internal/experiments"
	"repro/internal/loganalysis"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "simple trace file to analyze ('CGI|FILE key seconds' lines)")
		swalaPath  = flag.String("swala", "", "swalad extended-CLF access log to analyze")
		thresholds = flag.String("thresholds", "0.5,1,2,4", "comma-separated time thresholds in seconds")
		seed       = flag.Int64("seed", 1998, "synthetic trace seed")
	)
	flag.Parse()

	ths, err := parseThresholds(*thresholds)
	if err != nil {
		log.Fatal(err)
	}

	if *swalaPath != "" {
		trace, err := readSwalaLog(*swalaPath)
		if err != nil {
			log.Fatal(err)
		}
		s := trace.Summarize()
		fmt.Printf("log: %d requests (%d dynamic, %d static), total service %.1f s\n",
			s.Total, s.CGI, s.Files, s.TotalService)
		for _, row := range loganalysis.Analyze(trace, ths) {
			fmt.Println(row)
		}
		return
	}

	if *tracePath == "" {
		res := experiments.RunTable1(experiments.Options{Seed: *seed})
		res.Rows = nil // recompute with the requested thresholds below
		trace := adltrace.Generate(func() adltrace.Config {
			c := adltrace.Default()
			c.Seed = *seed
			return c
		}())
		res.Rows = loganalysis.Analyze(trace, ths)
		fmt.Print(res.Render())
		return
	}

	trace, err := readTrace(*tracePath)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range loganalysis.Analyze(trace, ths) {
		fmt.Println(row)
	}
}

func parseThresholds(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// readSwalaLog converts a swalad access log into an analyzable trace. Cache
// hits are recorded with their (cheap) fetch time, which is exactly what the
// analysis should see: only "executed" entries carry CGI cost.
func readSwalaLog(path string) (*adltrace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := accesslog.Parse(f)
	if err != nil {
		return nil, err
	}
	trace := &adltrace.Trace{}
	for _, e := range entries {
		trace.Records = append(trace.Records, adltrace.Record{
			Key:     e.Key(),
			URI:     e.URI,
			IsCGI:   e.Dynamic(),
			Service: e.Duration.Seconds(),
		})
	}
	return trace, nil
}

// readTrace parses "CGI|FILE <key> <service-seconds>" lines.
func readTrace(path string) (*adltrace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	trace := &adltrace.Trace{}
	scanner := bufio.NewScanner(f)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'CGI|FILE key seconds'", path, lineNo)
		}
		service, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad seconds %q", path, lineNo, fields[2])
		}
		trace.Records = append(trace.Records, adltrace.Record{
			Key:     fields[1],
			URI:     "/" + fields[1],
			IsCGI:   strings.EqualFold(fields[0], "CGI"),
			Service: service,
		})
	}
	return trace, scanner.Err()
}
