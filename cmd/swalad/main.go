// Command swalad runs one Swala node: a multi-threaded web server that
// cooperatively caches CGI results with its peers.
//
// Usage:
//
//	swalad -id 1 -http :8080 -cluster :9080 \
//	       -peers 2=host2:9080,3=host3:9080 \
//	       -mode cooperative -capacity 2000 -policy lru \
//	       -config cacheability.conf -cachedir /tmp/swala-cache \
//	       -docs ./htdocs -cgi /cgi-bin/=demo
//
// The demo CGI handler serves synthetic dynamic content whose execution
// time comes from the request's cost=<ms> query parameter; real executables
// can be mounted with -cgi /cgi-bin/app=/path/to/binary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/accesslog"
	"repro/internal/cacheability"
	"repro/internal/cgi"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/replacement"
	"repro/internal/store"
)

func main() {
	var (
		id        = flag.Uint("id", 1, "node ID (unique in the group)")
		httpAddr  = flag.String("http", ":8080", "HTTP listen address")
		cluAddr   = flag.String("cluster", ":9080", "cluster listen address")
		peersFlag = flag.String("peers", "", "comma-separated id=host:port peer list")
		modeFlag  = flag.String("mode", "cooperative", "no-cache | stand-alone | cooperative")
		capacity  = flag.Int("capacity", 2000, "cache capacity in entries (0 = unbounded)")
		policy    = flag.String("policy", "lru", "replacement policy: lru|fifo|lfu|size|gds")
		cfgPath   = flag.String("config", "", "cacheability config file (default: cache all CGI, 10m TTL)")
		cacheDir  = flag.String("cachedir", "", "disk cache directory (default: in-memory store)")
		storeKind = flag.String("store", "files", "disk cache layout for -cachedir: files (one file per entry) or log (segmented append-only log, one append per insert)")
		persist   = flag.Bool("persist", true, "recover the disk cache across restarts: scan -cachedir at startup, rebuild the directory from intact entries, quarantine corrupt ones (-persist=false wipes the directory first, the paper's cold-start semantics)")
		fsyncPol  = flag.String("fsync", "never", "disk cache fsync policy: never|always (always fsyncs each entry before publishing it)")
		docsDir   = flag.String("docs", "", "static document root to serve")
		cgiMounts = flag.String("cgi", "/cgi-bin/=demo", "comma-separated prefix=program mounts; program 'demo' is the built-in synthetic CGI")
		cores     = flag.Int("cores", 1, "simulated CPU cores")
		threads   = flag.Int("threads", 16, "HTTP request threads")
		watches   = flag.String("watch", "", "comma-separated file=pattern source watches; a change to file invalidates cached keys matching pattern")
		watchIvl  = flag.Duration("watch-interval", time.Second, "source watch poll interval")
		accessLog = flag.String("accesslog", "", "write an extended-CLF access log to this file (analyze with loganalyze -swala)")
		coalesce  = flag.Bool("coalesce", false, "coalesce concurrent identical cache misses into one CGI execution (beyond the paper)")
		memCache  = flag.Int64("memcache", 0, "in-memory read-cache tier budget in bytes over the store, 0 disables (beyond the paper)")
		reqTO     = flag.Duration("request-timeout", 0, "end-to-end deadline per request through the whole fetch chain, 0 disables (overruns answer 504)")
		fetchTO   = flag.Duration("fetch-timeout", 0, "bound on one remote cache fetch; a timeout falls back to local execution (0 = no bound)")
		batch     = flag.Bool("batch", true, "coalesce directory update broadcasts into batched wire frames")
		dirSync   = flag.Bool("dir-sync", true, "anti-entropy directory sync: heal dropped broadcasts and reconnect gaps with catch-up snapshots")
		sendQueue = flag.Int("sendqueue", 0, "per-peer broadcast queue depth (0 = default 1024)")
		health    = flag.Bool("health", true, "heartbeat failure detector: quarantine dead peers' directory entries instead of timing out every fetch (-health=false restores exact paper semantics)")
		probeIvl  = flag.Duration("probe-interval", 0, "failure-detector heartbeat period (0 = default 1s)")
		probeTO   = flag.Duration("probe-timeout", 0, "bound on one heartbeat round trip (0 = default 1s, clamped to probe-interval)")
		suspAfter = flag.Int("suspect-after", 0, "consecutive probe failures before a peer is suspect (0 = default 2)")
		deadAfter = flag.Int("dead-after", 0, "consecutive probe failures before a peer is dead and quarantined (0 = default 5)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address with mutex and block profiling enabled (empty = off)")
		placement = flag.String("placement", "replicate", "entry placement: replicate (the paper's replicated directory) or ring (consistent-hash ownership with runtime join/leave)")
		joinSeeds = flag.String("join", "", "comma-separated seed addresses to join a running ring through (ring placement only)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per member on the consistent-hash ring (0 = default 256)")
		replHot   = flag.Bool("replicate-hot", false, "adaptively replicate hot entries to their ring successors so reads of a viral key spread across multiple nodes (ring placement only)")
		hotRPS    = flag.Float64("hot-rps", 0, "decayed remote-serve rate (req/s) above which an entry replicates (0 = default 50)")
		hotRepl   = flag.Int("hot-replicas", 0, "ring successors that receive a copy of each hot entry (0 = default 2)")
		handoffRt = flag.Int("handoff-rate", 0, "throttle rebalance handoff offers to this many entries/s (0 = unthrottled)")
		invalOn   = flag.Bool("inval", false, "dependency-based invalidation: a CGI write to a declared resource originates a versioned invalidation wave that drops dependent cached results cluster-wide, with anti-entropy replay for peers that missed it; also mounts the demo rw pair /cgi-bin/report + /cgi-bin/update for loadgen -mix rw")
		swrOn     = flag.Bool("swr", false, "stale-while-revalidate: serve a just-invalidated body once more while a single background refresh re-executes it (requires -inval)")
		swrWindow = flag.Duration("swr-window", 0, "how long an invalidated body stays servable as stale under -swr (0 = default 2s)")
		hedgeOn   = flag.Bool("hedge", false, "hedged remote fetches: a routed fetch that outlives the peer's observed p95 launches one backup to a replica holder or falls back to local execution, first result wins; bounded by the retry budget (cooperative mode only)")
		hedgeTrig = flag.Duration("hedge-trigger", 0, "static hedge delay used until a peer has enough latency samples for a p95 (0 = default 100ms)")
		hedgeMin  = flag.Duration("hedge-min-trigger", 0, "floor under the dynamic p95 hedge trigger (0 = default 2ms)")
		budgetRat = flag.Float64("retry-budget", 0, "hedge tokens earned per primary fetch; caps hedges at roughly this fraction of fetch traffic (0 = default 0.1)")
		budgetCap = flag.Float64("retry-burst", 0, "retry-budget token bucket capacity (0 = default 10)")
		breakerOn = flag.Bool("breaker", false, "per-peer circuit breakers: fetch latency and failure-rate scores trip a slow or failing peer open, its fetches fail fast to local execution, half-open probes close it again (cooperative mode only)")
		brkFail   = flag.Float64("breaker-fail-rate", 0, "EWMA fetch failure rate that trips a peer's breaker (0 = default 0.5)")
		brkLat    = flag.Float64("breaker-latency-factor", 0, "trip when the fast latency EWMA exceeds this multiple of the healthy baseline (0 = default 8, negative disables the latency trip)")
		brkOpen   = flag.Duration("breaker-open-for", 0, "how long an open breaker rejects fetches before half-open probing (0 = default 2s)")
		brkMin    = flag.Int("breaker-min-samples", 0, "recorded fetches a peer needs before its breaker may trip (0 = default 8)")
		shedOn    = flag.Bool("shed", false, "adaptive load shedding: refuse peer-routed executions past the low CPU-queue watermark, peer serves and local would-execute requests past the high one (503 + Retry-After + X-Swala-Shed; stale SWR bodies serve as the degraded tier)")
		shedLow   = flag.Duration("shed-low", 0, "queue-delay low watermark: above it peer-routed executions are refused (0 = default 100ms)")
		shedHigh  = flag.Duration("shed-high", 0, "queue-delay high watermark: above it peer serves and local misses are refused too (0 = default 4x shed-low)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "swalad: ", log.LstdFlags)

	mode, err := parseMode(*modeFlag)
	if err != nil {
		logger.Fatal(err)
	}
	ringMode := false
	switch *placement {
	case "replicate":
	case "ring":
		if mode != core.Cooperative {
			logger.Fatalf("-placement=ring requires -mode=cooperative")
		}
		ringMode = true
	default:
		logger.Fatalf("unknown placement %q (want replicate or ring)", *placement)
	}
	if *joinSeeds != "" && !ringMode {
		logger.Fatalf("-join requires -placement=ring")
	}
	if *replHot && !ringMode {
		logger.Fatalf("-replicate-hot requires -placement=ring")
	}
	if *swrOn && !*invalOn {
		logger.Fatalf("-swr requires -inval")
	}
	if *hedgeOn && mode != core.Cooperative {
		logger.Fatalf("-hedge requires -mode=cooperative")
	}
	if *breakerOn && mode != core.Cooperative {
		logger.Fatalf("-breaker requires -mode=cooperative")
	}

	if *pprofAddr != "" {
		// Contention diagnosis in-situ: sampled mutex and block profiles are
		// cheap enough to leave on while the profiling endpoint is up.
		runtime.SetMutexProfileFraction(100)
		runtime.SetBlockProfileRate(100_000) // one sample per 100µs blocked
		go func() {
			logger.Printf("pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof: %v", err)
			}
		}()
	}

	cfg := core.Config{
		NodeID:         uint32(*id),
		Mode:           mode,
		Cores:          *cores,
		CacheCapacity:  *capacity,
		Policy:         replacement.Kind(*policy),
		RequestThreads: *threads,
		Logger:         logger,
		CoalesceMisses: *coalesce,
		MemCacheBytes:  *memCache,
		RequestTimeout: *reqTO,
		FetchTimeout:   *fetchTO,
		SendQueue:      *sendQueue,

		RingPlacement: ringMode,
		VirtualNodes:  *vnodes,
		ReplicateHot:  *replHot,
		HotRPS:        *hotRPS,
		HotReplicas:   *hotRepl,
		HandoffRate:   *handoffRt,

		Inval:     *invalOn,
		SWR:       *swrOn,
		SWRWindow: *swrWindow,

		Hedge:                *hedgeOn,
		HedgeTrigger:         *hedgeTrig,
		HedgeMinTrigger:      *hedgeMin,
		RetryBudgetRatio:     *budgetRat,
		RetryBudgetBurst:     *budgetCap,
		Breaker:              *breakerOn,
		BreakerFailRate:      *brkFail,
		BreakerLatencyFactor: *brkLat,
		BreakerOpenFor:       *brkOpen,
		BreakerMinSamples:    *brkMin,
		Shed:                 *shedOn,
		ShedLowWatermark:     *shedLow,
		ShedHighWatermark:    *shedHigh,

		DisableBroadcastBatch: !*batch,
		DisableDirSync:        !*dirSync,

		DisableHealth:       !*health,
		HealthProbeInterval: *probeIvl,
		HealthProbeTimeout:  *probeTO,
		HealthSuspectAfter:  *suspAfter,
		HealthDeadAfter:     *deadAfter,
	}
	if *cfgPath != "" {
		f, err := os.Open(*cfgPath)
		if err != nil {
			logger.Fatalf("config: %v", err)
		}
		pol, err := cacheability.Parse(f)
		f.Close()
		if err != nil {
			logger.Fatalf("config: %v", err)
		}
		cfg.Cacheability = pol
	}
	if *cacheDir != "" {
		fsync, err := store.ParseFsyncPolicy(*fsyncPol)
		if err != nil {
			logger.Fatalf("fsync: %v", err)
		}
		if !*persist {
			// Cold start: discard whatever a previous run left behind so the
			// node behaves exactly like the paper's (no recovery).
			if err := os.RemoveAll(*cacheDir); err != nil {
				logger.Fatalf("cachedir: %v", err)
			}
		}
		var (
			disk store.Store
			rep  *store.RecoveryReport
		)
		switch *storeKind {
		case "files":
			disk, rep, err = store.OpenDisk(*cacheDir, store.DiskOptions{Fsync: fsync})
		case "log":
			disk, rep, err = store.OpenLog(*cacheDir, store.LogOptions{Fsync: fsync})
		default:
			logger.Fatalf("store: unknown layout %q (want files or log)", *storeKind)
		}
		if err != nil {
			logger.Fatalf("cachedir: %v", err)
		}
		if *persist {
			logger.Printf("cache recovery (%s store): %d entries recovered, %d quarantined, %d orphans swept, %d duplicates, %d expired",
				*storeKind, len(rep.Recovered), rep.Quarantined, rep.OrphansSwept, rep.Duplicates, rep.Expired)
			cfg.Recovered = rep.Recovered
		}
		cfg.Store = disk
	}
	var logWriter *accesslog.Writer
	if *accessLog != "" {
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("accesslog: %v", err)
		}
		defer f.Close()
		logWriter = accesslog.NewWriter(f)
		defer logWriter.Flush()
		cfg.AccessLog = logWriter
		// Flush periodically so the log is tail-able while the daemon runs.
		go func() {
			for range time.Tick(2 * time.Second) {
				logWriter.Flush()
			}
		}()
	}

	srv := core.New(cfg)

	if *docsDir != "" {
		if err := loadDocs(srv, *docsDir); err != nil {
			logger.Fatalf("docs: %v", err)
		}
	}
	if err := mountCGI(srv, *cgiMounts); err != nil {
		logger.Fatal(err)
	}
	if *invalOn {
		mountDemoRW(srv)
		logger.Printf("invalidation on: /cgi-bin/report reads and /cgi-bin/update writes the demo resource %q", demoResource)
	}

	if err := srv.Start(*httpAddr, *cluAddr); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("node %d serving HTTP on %s, cluster on %s, mode %s",
		*id, srv.HTTPAddr(), srv.ClusterAddr(), mode)

	if *peersFlag != "" {
		for _, spec := range strings.Split(*peersFlag, ",") {
			idStr, addr, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				logger.Fatalf("bad peer spec %q (want id=host:port)", spec)
			}
			peerID, err := strconv.ParseUint(idStr, 10, 32)
			if err != nil {
				logger.Fatalf("bad peer id %q", idStr)
			}
			if err := srv.ConnectPeer(uint32(peerID), addr); err != nil {
				logger.Fatalf("peer %s: %v", spec, err)
			}
			logger.Printf("connected to peer %d at %s", peerID, addr)
		}
	}

	if *joinSeeds != "" {
		seeds := strings.Split(*joinSeeds, ",")
		for i := range seeds {
			seeds[i] = strings.TrimSpace(seeds[i])
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srv.JoinRing(ctx, seeds)
		cancel()
		if err != nil {
			logger.Fatalf("join: %v", err)
		}
		if rs := srv.RingStatus(); rs != nil {
			logger.Printf("joined ring: %d members, epoch %d", len(rs.Members), rs.Epoch)
		}
	}

	if *watches != "" {
		mon := monitor.New(srv.Invalidate, *watchIvl, nil)
		for _, spec := range strings.Split(*watches, ",") {
			file, pattern, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok {
				logger.Fatalf("bad watch spec %q (want file=pattern)", spec)
			}
			if err := mon.Add(monitor.Watch{Path: file, Pattern: pattern}); err != nil {
				logger.Fatal(err)
			}
			logger.Printf("watching %s -> invalidate %q", file, pattern)
		}
		mon.Start()
		defer mon.Stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
	if ringMode {
		// Hand every owned entry to its next owner before going dark, so a
		// planned shutdown costs the cluster no cached work.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.LeaveRing(ctx)
		cancel()
		logger.Printf("left ring")
	}
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
	}
	snap := srv.Counters()
	logger.Printf("final counters: %v", snap)
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "no-cache", "nocache":
		return core.NoCache, nil
	case "stand-alone", "standalone":
		return core.StandAlone, nil
	case "cooperative", "coop":
		return core.Cooperative, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// loadDocs registers every regular file under root at its relative URL.
func loadDocs(srv *core.Server, root string) error {
	return filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		body, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		urlPath := "/" + filepath.ToSlash(rel)
		srv.Files().Add(urlPath, typeFor(urlPath), body)
		return nil
	})
}

func typeFor(path string) string {
	switch filepath.Ext(path) {
	case ".html", ".htm":
		return "text/html"
	case ".txt":
		return "text/plain"
	case ".gif":
		return "image/gif"
	case ".jpg", ".jpeg":
		return "image/jpeg"
	default:
		return "application/octet-stream"
	}
}

// mountCGI installs CGI programs: "prefix=demo" mounts the synthetic demo
// program; "prefix=/path/to/exe" mounts a real executable.
func mountCGI(srv *core.Server, mounts string) error {
	for _, m := range strings.Split(mounts, ",") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		prefix, prog, ok := strings.Cut(m, "=")
		if !ok {
			return fmt.Errorf("bad cgi mount %q (want prefix=program)", m)
		}
		if prog == "demo" {
			srv.CGI().RegisterPrefix(prefix, &cgi.Synthetic{
				OutputSize:   2048,
				PerQueryTime: time.Millisecond,
			})
		} else {
			srv.CGI().RegisterPrefix(prefix, &cgi.Exec{Path: prog})
		}
	}
	return nil
}

// demoResource is the shared resource name the demo rw pair declares
// dependencies on.
const demoResource = "demo-db"

// demoDB backs the demo read-write CGI pair: one version counter per item.
type demoDB struct {
	mu   sync.Mutex
	vers map[string]int
}

// item pulls the item name out of a query like "q=item012&cost=5" or
// "item=012"; the whole query string if no item parameter is present.
func (db *demoDB) item(query string) string {
	for _, kv := range strings.Split(query, "&") {
		k, v, _ := strings.Cut(kv, "=")
		if k == "item" || k == "q" {
			return v
		}
	}
	return query
}

type demoReport struct{ db *demoDB }

func (p *demoReport) Run(_ context.Context, req cgi.Request) (cgi.Result, error) {
	it := p.db.item(req.Query)
	p.db.mu.Lock()
	v := p.db.vers[it]
	p.db.mu.Unlock()
	return cgi.Result{Status: 200, ContentType: "text/plain",
		Body: []byte(fmt.Sprintf("report %s v%06d\n", it, v))}, nil
}

type demoUpdate struct{ db *demoDB }

func (p *demoUpdate) Run(_ context.Context, req cgi.Request) (cgi.Result, error) {
	it := p.db.item(req.Query)
	p.db.mu.Lock()
	p.db.vers[it]++
	v := p.db.vers[it]
	p.db.mu.Unlock()
	return cgi.Result{Status: 200, ContentType: "text/plain",
		Body: []byte(fmt.Sprintf("updated %s -> v%06d\n", it, v))}, nil
}

// mountDemoRW installs the demo read-write pair with declared dependencies:
// /cgi-bin/report reads the demo resource, /cgi-bin/update writes it, so a
// completed update originates an invalidation wave covering cached reports
// (drive it with loadgen -mix rw).
func mountDemoRW(srv *core.Server) {
	db := &demoDB{vers: make(map[string]int)}
	srv.CGI().Register("/cgi-bin/report", &demoReport{db: db})
	srv.CGI().RegisterDeps("/cgi-bin/report", cgi.Deps{Reads: []string{demoResource}})
	srv.CGI().Register("/cgi-bin/update", &demoUpdate{db: db})
	srv.CGI().RegisterDeps("/cgi-bin/update", cgi.Deps{Writes: []string{demoResource}})
}
