package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestParseMode(t *testing.T) {
	cases := map[string]core.Mode{
		"no-cache":    core.NoCache,
		"nocache":     core.NoCache,
		"stand-alone": core.StandAlone,
		"standalone":  core.StandAlone,
		"cooperative": core.Cooperative,
		"coop":        core.Cooperative,
	}
	for in, want := range cases {
		got, err := parseMode(in)
		if err != nil || got != want {
			t.Fatalf("parseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseMode("turbo"); err == nil {
		t.Fatal("parseMode accepted unknown mode")
	}
}

func TestTypeFor(t *testing.T) {
	cases := map[string]string{
		"/a/index.html": "text/html",
		"/a/readme.txt": "text/plain",
		"/a/logo.gif":   "image/gif",
		"/a/photo.jpg":  "image/jpeg",
		"/a/data.bin":   "application/octet-stream",
	}
	for in, want := range cases {
		if got := typeFor(in); got != want {
			t.Fatalf("typeFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadDocs(t *testing.T) {
	root := t.TempDir()
	os.MkdirAll(filepath.Join(root, "sub"), 0o755)
	os.WriteFile(filepath.Join(root, "index.html"), []byte("<p>root</p>"), 0o644)
	os.WriteFile(filepath.Join(root, "sub", "page.txt"), []byte("nested"), 0o644)

	srv := core.New(core.Config{NodeID: 1, Mode: core.NoCache})
	defer srv.Close()
	if err := loadDocs(srv, root); err != nil {
		t.Fatal(err)
	}
	f, ok := srv.Files().Get("/index.html")
	if !ok || string(f.Body) != "<p>root</p>" || f.ContentType != "text/html" {
		t.Fatalf("index.html = %+v ok=%v", f, ok)
	}
	f, ok = srv.Files().Get("/sub/page.txt")
	if !ok || string(f.Body) != "nested" {
		t.Fatalf("sub/page.txt = %+v ok=%v", f, ok)
	}
}

func TestMountCGI(t *testing.T) {
	srv := core.New(core.Config{NodeID: 1, Mode: core.NoCache})
	defer srv.Close()
	if err := mountCGI(srv, "/cgi-bin/=demo,/real/=/bin/true"); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.CGI().Lookup("/cgi-bin/anything"); !ok {
		t.Fatal("demo mount missing")
	}
	if _, ok := srv.CGI().Lookup("/real/prog"); !ok {
		t.Fatal("exec mount missing")
	}
	if err := mountCGI(srv, "no-equals-sign"); err == nil {
		t.Fatal("bad mount accepted")
	}
	// Empty specs are skipped silently.
	if err := mountCGI(srv, " , "); err != nil {
		t.Fatal(err)
	}
}
