// Command swalactl queries a running Swala node over the cluster protocol:
// it connects to the node's cluster port, identifies itself, and requests
// the node's cache counters.
//
// Usage:
//
//	swalactl -addr host:9080 stats
//	swalactl -addr host:9080 ping
//	swalactl -addr host:9080 invalidate 'GET /cgi-bin/map*'
//	swalactl -addr host:9080 -interval 2s watch
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9080", "node cluster address")
		timeout  = flag.Duration("timeout", 5*time.Second, "request timeout")
		interval = flag.Duration("interval", 2*time.Second, "watch refresh interval")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "stats"
	}

	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer conn.Close()
	if cmd != "watch" {
		conn.SetDeadline(time.Now().Add(*timeout))
	}
	wc := wire.NewConn(conn)

	if err := wc.Write(&wire.Hello{NodeID: 0xFFFF, NodeName: "swalactl"}); err != nil {
		log.Fatalf("hello: %v", err)
	}

	// readReply skips broadcast and sync traffic a chatty node might write on
	// this connection and returns the first direct reply frame.
	readReply := func() wire.Message {
		for {
			msg, err := wc.Read()
			if err != nil {
				log.Fatalf("read: %v", err)
			}
			switch msg.(type) {
			case *wire.Insert, *wire.Delete, *wire.DirBatch, *wire.DirSync, *wire.DirSyncReq,
				*wire.RingUpdate, *wire.InvalWave:
				continue
			}
			return msg
		}
	}

	fetchStats := func(seq uint64) *wire.StatsReply {
		if err := wc.Write(&wire.Stats{Seq: seq}); err != nil {
			log.Fatalf("stats: %v", err)
		}
		msg := readReply()
		sr, ok := msg.(*wire.StatsReply)
		if !ok {
			log.Fatalf("unexpected reply %v", msg.Type())
		}
		return sr
	}

	switch cmd {
	case "stats":
		sr := fetchStats(1)
		hits := sr.LocalHits + sr.RemoteHits
		lookups := hits + sr.Misses
		fmt.Printf("entries:      %d\n", sr.Entries)
		fmt.Printf("local hits:   %d\n", sr.LocalHits)
		fmt.Printf("remote hits:  %d\n", sr.RemoteHits)
		fmt.Printf("misses:       %d\n", sr.Misses)
		fmt.Printf("false misses: %d\n", sr.FalseMisses)
		fmt.Printf("false hits:   %d\n", sr.FalseHits)
		fmt.Printf("inserts:      %d\n", sr.Inserts)
		fmt.Printf("evictions:    %d\n", sr.Evictions)
		fmt.Printf("dropped:      %d\n", sr.Dropped)
		for _, pd := range sr.PeerDrops {
			fmt.Printf("  to peer %-4d %d\n", pd.Peer, pd.Dropped)
		}
		if lookups > 0 {
			fmt.Printf("hit ratio:    %.1f%%\n", 100*float64(hits)/float64(lookups))
		}
		if len(sr.Health) > 0 {
			fmt.Printf("peer health:\n")
			for _, ph := range sr.Health {
				fmt.Printf("  peer %-4d %-8s fails=%d\n", ph.Peer, healthState(ph.State), ph.Fails)
			}
		}
		if st := sr.Storage; st != nil {
			fmt.Printf("storage:\n")
			mode := "healthy"
			if st.Degraded {
				mode = "DEGRADED (read-only)"
			}
			fmt.Printf("  mode:         %s\n", mode)
			if st.LastError != "" {
				fmt.Printf("  last error:   %s\n", st.LastError)
			}
			fmt.Printf("  put failures: %d\n", st.PutFailures)
			fmt.Printf("  quarantined:  %d\n", st.Quarantined)
			fmt.Printf("  recovered:    %d\n", st.Recovered)
			fmt.Printf("  orphans:      %d\n", st.OrphansSwept)
		}
		if rp := sr.Replicas; rp != nil {
			fmt.Printf("replication:\n")
			fmt.Printf("  tracked keys:   %d\n", rp.Tracked)
			fmt.Printf("  hot (pushing):  %d\n", rp.Hot)
			fmt.Printf("  held replicas:  %d\n", rp.Held)
			fmt.Printf("  pushes sent:    %d (retires %d)\n", rp.Pushed, rp.Retired)
			fmt.Printf("  bodies pulled:  %d (dropped %d)\n", rp.Pulled, rp.Dropped)
			fmt.Printf("  replica serves: %d\n", rp.ReplicaServes)
			fmt.Printf("  hint skips:     %d\n", rp.HintSkips)
		}
		if rs := sr.Resilience; rs != nil {
			fmt.Printf("resilience:\n")
			fmt.Printf("  hedges:         issued %d of %d primaries, won %d, abandoned %d, denied %d, local fallbacks %d\n",
				rs.HedgesIssued, rs.FetchPrimaries, rs.HedgesWon, rs.HedgesAbandoned, rs.HedgesDenied, rs.HedgesLocal)
			fmt.Printf("  retry budget:   %.1f%% full\n", float64(rs.BudgetPermille)/10)
			fmt.Printf("  breaker fails:  %d fast-failed fetches\n", rs.BreakerFastFails)
			fmt.Printf("  shed:           level %d, remote %d, local %d, stale served %d\n",
				rs.ShedLevel, rs.ShedRemote, rs.ShedLocal, rs.ShedStale)
			for _, b := range rs.Breakers {
				fmt.Printf("  peer %-4d %-9s trips=%d samples=%d lat=%v base=%v p95=%v fail=%.1f%%\n",
					b.Peer, breakerState(b.State), b.Trips, b.Samples,
					b.Latency.Round(time.Microsecond), b.Baseline.Round(time.Microsecond),
					b.P95.Round(time.Microsecond), float64(b.FailPermille)/10)
			}
		}
	case "watch":
		// One line per interval with deltas, like vmstat.
		fmt.Printf("%8s %8s %8s %8s %8s %8s\n",
			"entries", "hits/s", "miss/s", "ins/s", "evict/s", "hit%")
		prev := fetchStats(1)
		for seq := uint64(2); ; seq++ {
			time.Sleep(*interval)
			cur := fetchStats(seq)
			secs := interval.Seconds()
			dHits := float64((cur.LocalHits + cur.RemoteHits) - (prev.LocalHits + prev.RemoteHits))
			dMiss := float64(cur.Misses - prev.Misses)
			ratio := 0.0
			if dHits+dMiss > 0 {
				ratio = 100 * dHits / (dHits + dMiss)
			}
			fmt.Printf("%8d %8.1f %8.1f %8.1f %8.1f %7.1f%%\n",
				cur.Entries,
				dHits/secs,
				dMiss/secs,
				float64(cur.Inserts-prev.Inserts)/secs,
				float64(cur.Evictions-prev.Evictions)/secs,
				ratio)
			prev = cur
		}
	case "invalidate":
		pattern := flag.Arg(1)
		if pattern == "" {
			log.Fatal("invalidate requires a key pattern, e.g. 'GET /cgi-bin/map*'")
		}
		// Seq asks the node for an InvalAck instead of fire-and-forget, so a
		// drop toward a still-dialing peer is visible here instead of silent.
		if err := wc.Write(&wire.Invalidate{Origin: 0xFFFF, Pattern: pattern, Seq: 2}); err != nil {
			log.Fatalf("invalidate: %v", err)
		}
		msg := readReply()
		ack, ok := msg.(*wire.InvalAck)
		if !ok {
			log.Fatalf("unexpected reply %v", msg.Type())
		}
		fmt.Printf("invalidated %d entries on %s; wave sent toward %d peers\n", ack.Matched, *addr, ack.Peers)
		if ack.Unreached > 0 {
			fmt.Printf("WARNING: %d peers had no usable link (down or still dialing); their copies heal via anti-entropy replay once connected\n", ack.Unreached)
		}
	case "ring":
		sr := fetchStats(1)
		if sr.Ring == nil {
			fmt.Println("node runs replicate placement (no ring); start it with -placement=ring")
			return
		}
		r := sr.Ring
		fmt.Printf("epoch:         %d\n", r.Epoch)
		fmt.Printf("virtual nodes: %d per member\n", r.VirtualNodes)
		if !r.LastRebalance.IsZero() {
			fmt.Printf("last rebalance: %s (%s ago)\n",
				r.LastRebalance.Format(time.RFC3339), time.Since(r.LastRebalance).Round(time.Second))
		}
		fmt.Printf("handoff:       %d entries out, %d in (%d bytes pulled)\n",
			r.HandoffOut, r.HandoffIn, r.HandoffBytes)
		fmt.Printf("members:       %d\n", len(r.Members))
		for _, m := range r.Members {
			fmt.Printf("  node %-4d %-22s %-8s owns %5.1f%%\n",
				m.ID, m.Addr, ringMemberState(m.State), float64(m.OwnedPermille)/10)
		}
	case "ping":
		start := time.Now()
		if err := wc.Write(&wire.Ping{Seq: 1}); err != nil {
			log.Fatalf("ping: %v", err)
		}
		if msg := readReply(); msg.Type() != wire.MsgPong {
			log.Fatalf("unexpected reply %v", msg.Type())
		}
		fmt.Printf("pong in %v\n", time.Since(start))
	default:
		log.Fatalf("unknown command %q (want stats, ring, watch, invalidate, or ping)", cmd)
	}
}

// ringMemberState names the wire encoding of a ring member's state.
func ringMemberState(s uint8) string {
	switch s {
	case 0:
		return "alive"
	case 1:
		return "suspect"
	case 2:
		return "dead"
	case 3:
		return "self"
	default:
		return "unknown"
	}
}

// breakerState names the wire encoding of a peer's circuit-breaker state.
func breakerState(s uint8) string {
	switch s {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return "unknown"
	}
}

func healthState(s uint8) string {
	switch s {
	case 0:
		return "alive"
	case 1:
		return "suspect"
	case 2:
		return "dead"
	default:
		return "unknown"
	}
}
