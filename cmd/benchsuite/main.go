// Command benchsuite regenerates every table and figure of the paper's
// evaluation and prints them side by side with the published shape targets.
//
// Usage:
//
//	benchsuite                 # run everything at full size
//	benchsuite -quick          # reduced sizes (seconds instead of minutes)
//	benchsuite -run table1,figure4
//	benchsuite -scale 2ms      # 1 paper-second = 2 ms measured
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/timescale"
)

type experiment struct {
	name string
	desc string
	// scale is the experiment's default time scale (1 paper-second of
	// simulated service per this much measured time). Latency-difference
	// experiments use an expanded scale so simulated costs dominate host
	// scheduling noise; structural experiments (hit counts, large ratios)
	// use a compressed one to run fast.
	scale time.Duration
	run   func(experiments.Options) (string, error)
}

const (
	latencyScale    = 100 * time.Millisecond
	structuralScale = 2500 * time.Microsecond
)

var suite = []experiment{
	{"table1", "access-log analysis: potential saving from caching CGI", structuralScale, func(o experiments.Options) (string, error) {
		return experiments.RunTable1(o).Render(), nil
	}},
	{"table2", "file-fetch response time vs clients (HTTPd, Enterprise, Swala)", latencyScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunTable2(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"figure3", "null-CGI response time across five configurations", latencyScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure3(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"figure4", "multi-node response time with and without cooperative caching", structuralScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunFigure4(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table3", "insert + broadcast overhead", latencyScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunTable3(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table4", "replicated directory maintenance overhead", latencyScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunTable4(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table5", "hit ratios, cache size 2000", structuralScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunHitRatio(o, 2000)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"table6", "hit ratios, cache size 20", structuralScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunHitRatio(o, 20)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"policies", "ablation: the five replacement policies", structuralScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunPolicyAblation(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"latency", "sensitivity: cooperative caching vs inter-node latency", latencyScale, func(o experiments.Options) (string, error) {
		r, err := experiments.RunLatencySweep(o)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
}

func main() {
	var (
		runFlag    = flag.String("run", "", "comma-separated experiment list (default: all)")
		quick      = flag.Bool("quick", false, "reduced request counts and sweeps")
		scaleFlag  = flag.Duration("scale", 0, "measured duration of one paper second (0 = per-experiment default)")
		seed       = flag.Int64("seed", 1998, "workload seed")
		list       = flag.Bool("list", false, "list experiments and exit")
		hotpath    = flag.String("hotpath", "", "run the hot-path optimisation comparison and write JSON to this file instead of the paper suite")
		pipeline   = flag.String("pipeline", "", "run the fetch-pipeline overhead comparison and write JSON to this file instead of the paper suite")
		broadcast  = flag.String("broadcast", "", "run the directory-replication batching comparison and write JSON to this file instead of the paper suite")
		faults     = flag.String("faults", "", "run the fault-injection schedule (hang/partition/rejoin) and write JSON to this file instead of the paper suite")
		crash      = flag.String("crash", "", "run the crash-recovery experiment (kill mid-write, corrupt entries, warm restart) and write JSON to this file instead of the paper suite")
		crashStore = flag.String("crashstore", "files", "durable backend for -crash: files (file-per-entry) or log (segmented append-only)")
		multicore  = flag.String("multicore", "", "run the GOMAXPROCS scaling sweep (closed-loop capacity + open-loop tail latency) and write JSON to this file instead of the paper suite")
		scaleout   = flag.String("scaleout", "", "run the scale-out experiment (live 8->12 ring join and graceful leave under load vs the replicated directory) and write JSON to this file instead of the paper suite")
		replicat   = flag.String("replication", "", "run the adaptive hot-entry replication experiment (viral key on an 8-node ring with and without -replicate-hot) and write JSON to this file instead of the paper suite")
		inval      = flag.String("invalidation", "", "run the dependency-based invalidation coherence experiment (rw mix, replica retire, partition heal, SWR storm) and write JSON to this file instead of the paper suite")
		grayfault  = flag.String("grayfault", "", "run the gray-failure & overload resilience schedule (slow peer with hedging/breakers, flash crowd with shedding) and write JSON to this file instead of the paper suite")
		gomaxprocs = flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS before running (0 = inherit), so the recorded meta value is controlled")
	)
	flag.Parse()

	if *gomaxprocs > 0 {
		runtime.GOMAXPROCS(*gomaxprocs)
	}

	if *list {
		for _, e := range suite {
			fmt.Printf("  %-8s  %s\n", e.name, e.desc)
		}
		return
	}

	if *hotpath != "" {
		if err := runHotpath(*hotpath, *quick, *seed); err != nil {
			log.Fatalf("hotpath failed: %v", err)
		}
		return
	}

	if *pipeline != "" {
		if err := runPipeline(*pipeline, *quick, *seed); err != nil {
			log.Fatalf("pipeline failed: %v", err)
		}
		return
	}

	if *broadcast != "" {
		if err := runBroadcast(*broadcast, *quick, *seed); err != nil {
			log.Fatalf("broadcast failed: %v", err)
		}
		return
	}

	if *faults != "" {
		if err := runFaults(*faults, *quick, *seed); err != nil {
			log.Fatalf("faults failed: %v", err)
		}
		return
	}

	if *crash != "" {
		if err := runCrash(*crash, *crashStore, *quick, *seed); err != nil {
			log.Fatalf("crash failed: %v", err)
		}
		return
	}

	if *multicore != "" {
		if err := runMulticore(*multicore, *quick, *seed); err != nil {
			log.Fatalf("multicore failed: %v", err)
		}
		return
	}

	if *scaleout != "" {
		if err := runScaleout(*scaleout, *quick, *seed); err != nil {
			log.Fatalf("scaleout failed: %v", err)
		}
		return
	}

	if *replicat != "" {
		if err := runReplication(*replicat, *quick, *seed); err != nil {
			log.Fatalf("replication failed: %v", err)
		}
		return
	}

	if *inval != "" {
		if err := runInvalidation(*inval, *quick, *seed); err != nil {
			log.Fatalf("invalidation failed: %v", err)
		}
		return
	}

	if *grayfault != "" {
		if err := runGrayFault(*grayfault, *quick, *seed); err != nil {
			log.Fatalf("grayfault failed: %v", err)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, n := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	fmt.Printf("Swala evaluation suite — quick=%v, seed=%d\n\n", *quick, *seed)

	failed := false
	for _, e := range suite {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		scale := e.scale
		if *scaleFlag > 0 {
			scale = *scaleFlag
		}
		opts := experiments.Options{
			Quick: *quick,
			Seed:  *seed,
			Scale: timescale.Scale{PerSecond: scale},
		}
		fmt.Printf("=== %s: %s (%s) ===\n", e.name, e.desc, opts.Scale)
		start := time.Now()
		out, err := e.run(opts)
		if err != nil {
			log.Printf("%s failed: %v", e.name, err)
			failed = true
			continue
		}
		fmt.Print(out)
		fmt.Printf("(%s in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// runHotpath measures the beyond-the-paper hot-path optimisations
// (miss coalescing, memory store tier, striped directory locks, pooled wire
// buffers) and writes a machine-readable JSON report so successive changes
// can be compared against it.
func runHotpath(path string, quick bool, seed int64) error {
	fmt.Printf("Swala hot-path comparison — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunHotpath(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(hotpath in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runBroadcast measures batched, corked directory replication against the
// pre-batching one-flush-per-update wire behaviour (Table 3/4 load shapes
// plus update-visibility probes) and writes a machine-readable JSON report.
// The headline criterion: >= 5x fewer stream pushes per directory update at
// 8 nodes under an insert storm.
func runBroadcast(path string, quick bool, seed int64) error {
	fmt.Printf("Swala directory-replication comparison — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunBroadcast(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(broadcast in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runFaults measures hit ratio and request latency through a hang /
// partition / rejoin schedule on an 8-node group with the failure detector
// on, against the paper's reactive-only fallback, and writes a
// machine-readable JSON report. The headline criteria: requests mapping to a
// dead node's entries cost within 2x the ordinary miss path (vs a full
// FetchTimeout without the detector), and the hit ratio recovers to within
// one point of the clean baseline after rejoin and resync.
func runFaults(path string, quick bool, seed int64) error {
	fmt.Printf("Swala fault-injection schedule — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunFaults(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(faults in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runScaleout measures the ring-placement membership machinery end to end: a
// replicated-directory baseline at 8 nodes, ring steady state, a live join of
// 4 nodes under hot-set load (hit-ratio dip, recovery time, rebalance
// traffic), the grown ring's flat per-node directory footprint, and a
// graceful leave that hands every cached entry off before departing.
func runScaleout(path string, quick bool, seed int64) error {
	fmt.Printf("Swala scale-out schedule — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunScaleout(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(scaleout in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runReplication measures adaptive hot-entry replication: a single viral key
// on an 8-node ring, single-owner vs -replicate-hot. The headline criteria:
// the hottest node's share of peer-routed serves drops to at most 60% of the
// single-owner baseline, hotset p99 is no worse, and the replicas retire on
// their own after the hotspot moves to a fresh key range.
func runReplication(path string, quick bool, seed int64) error {
	fmt.Printf("Swala adaptive-replication experiment — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunReplication(experiments.Options{
		Quick: quick, Seed: seed,
		Scale: timescale.Scale{PerSecond: latencyScale},
	})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(replication in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !r.GatesPassed() {
		return fmt.Errorf("acceptance gates failed: spread=%v tail=%v retire=%v",
			r.SpreadGate, r.TailGate, r.RetireGate)
	}
	return nil
}

// runGrayFault measures gray-failure and overload resilience: a peer whose
// cluster writes are delayed just under the probe timeout (hedged fetches +
// breakers recover the hot-set p99; without them every request pays the
// delay), and a 3x-capacity flash crowd against a single node (shedding
// keeps goodput near capacity; without it the queue outlives the request
// timeout and goodput collapses). The gates: converged slow-peer p99 within
// 2x the healthy baseline, overload goodput with shedding at least 80% of
// measured capacity, the hedge retry budget never exceeded on any node, and
// the default-off configuration exposing no resilience surface.
func runGrayFault(path string, quick bool, seed int64) error {
	fmt.Printf("Swala gray-failure & overload schedule — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunGrayFault(experiments.Options{
		Quick: quick, Seed: seed,
		Scale: timescale.Scale{PerSecond: latencyScale},
	})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(grayfault in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !r.GatesPassed() {
		return fmt.Errorf("acceptance gates failed: p99within2x=%v budget=%v goodput=%v defaultoff=%v",
			r.SlowOn.Within2x, r.Budget.Respected, r.Overload.ShedOn.GoodputOK, r.DefaultOff.Passed)
	}
	return nil
}

// runInvalidation measures dependency-based invalidation: a read-write mix
// whose writes originate versioned invalidation waves. The headline criteria:
// after wave quiescence zero stale bodies are served anywhere (byte-compared
// on every node, including with replica holders in play and across a
// partition heal), and stale-while-revalidate keeps read p50 within 2x of
// steady state through a write storm.
func runInvalidation(path string, quick bool, seed int64) error {
	fmt.Printf("Swala invalidation-coherence experiment — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunInvalidation(experiments.Options{
		Quick: quick, Seed: seed,
		Scale: timescale.Scale{PerSecond: structuralScale},
	})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(invalidation in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !r.GatesPassed() {
		return fmt.Errorf("acceptance gates failed: coherence=%v replica=%v partition=%v swr=%v",
			r.CoherenceGate, r.ReplicaGate, r.PartitionGate, r.SWRGate)
	}
	return nil
}

// runCrash measures durable-store crash recovery: a stand-alone node fills
// its disk cache, is killed before a publish rename, has entry files damaged
// while down, and restarts over the same directory. The headline criteria:
// every completed entry is recovered and every damaged one quarantined, the
// warm-restart hit ratio is strictly above the cold baseline, and zero
// corrupt bodies are ever served.
func runCrash(path, backend string, quick bool, seed int64) error {
	fmt.Printf("Swala crash-recovery experiment — store=%s, quick=%v, seed=%d\n\n", backend, quick, seed)
	start := time.Now()
	r, err := experiments.RunCrashStore(experiments.Options{Quick: quick, Seed: seed}, backend)
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(crash in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !r.AllCompletedRecovered || !r.AllDamagedQuarantined || !r.ZeroCorruptServed || !r.WarmAboveCold {
		return fmt.Errorf("acceptance gates failed: completed-recovered=%v damaged-quarantined=%v zero-corrupt-served=%v warm-above-cold=%v",
			r.AllCompletedRecovered, r.AllDamagedQuarantined, r.ZeroCorruptServed, r.WarmAboveCold)
	}
	return nil
}

// runMulticore sweeps GOMAXPROCS 1→N over the warm hot-set workload
// (closed-loop capacity, then open-loop Poisson arrivals at ~70% of it for
// honest p99/p999) plus the files-vs-log warm-miss write path, and writes a
// machine-readable JSON report. The >=2x-at-4-cores gate is enforced only on
// hosts with at least 4 CPUs; smaller hosts record the curve unchecked.
func runMulticore(path string, quick bool, seed int64) error {
	fmt.Printf("Swala multicore scaling sweep — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunMulticore(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(multicore in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if r.GateChecked && !r.GatePassed {
		return fmt.Errorf("scaling gate failed: %.2fx at 4 procs, want >= 2x", r.ScalingAt4)
	}
	return nil
}

// runPipeline measures the layered fetch chain against a hand-inlined
// equivalent of the pre-refactor request path (local-hit and remote-hit
// shapes) and writes a machine-readable JSON report; the chain's budget is
// to stay within 5% of the inline path.
func runPipeline(path string, quick bool, seed int64) error {
	fmt.Printf("Swala fetch-pipeline comparison — quick=%v, seed=%d\n\n", quick, seed)
	start := time.Now()
	r, err := experiments.RunPipeline(experiments.Options{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(r.Render())
	fmt.Printf("(pipeline in %v)\n", time.Since(start).Round(time.Millisecond))

	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
