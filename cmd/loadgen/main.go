// Command loadgen is the WebStone-style load generator: it drives one or
// more web servers with concurrent client threads and reports response-time
// statistics.
//
// Usage:
//
//	loadgen -addrs host1:8080,host2:8080 -clients 16 -requests 100 -mix webstone
//	loadgen -addrs host1:8080 -clients 24 -requests 100 -uri /cgi-bin/null
//	loadgen -addrs host1:8080 -openloop -rate 500 -duration 30s -mix hotset
//
// With -openloop, requests arrive on a Poisson schedule at -rate req/s for
// -duration, independent of response times (closed-loop clients hide
// queueing collapse), and the report includes p99/p999 tail latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/adltrace"
	"repro/internal/httpclient"
	"repro/internal/workload"
)

func main() {
	var (
		addrsFlag = flag.String("addrs", "localhost:8080", "comma-separated server addresses; client i targets addrs[i %% len]")
		clients   = flag.Int("clients", 16, "concurrent client threads")
		requests  = flag.Int("requests", 100, "requests per client")
		mix       = flag.String("mix", "", "workload mix: webstone (file mix), adl (dynamic trace replay), insert (unique-key insert storm), hotset (fixed-key hit-ratio load), rw (read-write mix over a fixed item set), or empty for -uri")
		uri       = flag.String("uri", "/cgi-bin/null", "URI to request when -mix is empty")
		seed      = flag.Int64("seed", 1, "workload random seed")
		cost      = flag.Int("cost", 0, "per-request CGI cost in paper milliseconds for -mix insert/hotset")
		hotKeys   = flag.Int("hotkeys", 256, "size of the fixed key set for -mix hotset/rw")
		writeFrac = flag.Float64("writefrac", 0.1, "fraction of requests that are writes for -mix rw")
		openLoop  = flag.Bool("openloop", false, "Poisson open-loop mode: arrivals at -rate for -duration instead of -clients x -requests")
		rate      = flag.Float64("rate", 100, "open-loop arrival rate in requests per second")
		duration  = flag.Duration("duration", 10*time.Second, "open-loop run duration")
		inflight  = flag.Int("inflight", 4096, "open-loop cap on outstanding requests (arrivals beyond it are shed)")
		report    = flag.Duration("report", 0, "open-loop progress line cadence, for watching throughput through a live join/leave (0 = only the final report)")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	var src workload.Source
	switch *mix {
	case "webstone":
		src = workload.FileMixSource(addrs, *requests, *seed)
	case "adl":
		// Replay the dynamic portion of a synthetic ADL trace sized to the
		// requested volume. The target server must mount a cost-aware CGI at
		// /cgi-bin/adl (swalad's demo mount: -cgi /cgi-bin/=demo).
		cfg := adltrace.Default()
		cfg.TotalRequests = *clients * *requests * 5 / 2 // ~41% CGI
		cfg.Seed = *seed
		var reqs []workload.TraceRequest
		for _, rec := range adltrace.Generate(cfg).CGIRequests() {
			reqs = append(reqs, workload.TraceRequest{URI: rec.URI})
		}
		src = workload.SliceSource(addrs, reqs, *clients)
	case "insert":
		// Insert-heavy storm: every request is a fresh cacheable key, so each
		// one executes, inserts, and broadcasts a directory update to every
		// peer. The target servers must mount a cost-aware CGI at /cgi-bin/adl
		// (swalad's demo mount: -cgi /cgi-bin/=demo).
		src = workload.InsertStormSource(addrs, *requests, *cost)
	case "hotset":
		// Steady-state hit-ratio load: draws repeat over a fixed cacheable key
		// set, so the measured hit ratio tracks directory health through node
		// failures and rejoins. Requires a cost-aware CGI at /cgi-bin/adl.
		src = workload.HotSetSource(addrs, *hotKeys, *requests, *cost, *seed)
	case "rw":
		// Read-write mix: cacheable reads of /cgi-bin/report plus writes to
		// /cgi-bin/update that mutate the shared resource. With swalad -inval
		// the writes originate invalidation waves; the coherence experiment
		// (benchsuite -invalidation) runs this mix with byte-compared reads.
		src = workload.RWMixSource(addrs, *hotKeys, *requests, *cost, *writeFrac, *seed)
	case "":
		src = workload.RepeatSource(addrs, *uri, *requests)
	default:
		log.Fatalf("unknown mix %q", *mix)
	}

	client := httpclient.New(nil)
	defer client.Close()

	if *openLoop {
		// The open-loop driver pulls the source as a single request stream;
		// the per-client request bound does not apply, so rebuild bounded
		// sources with room for the whole run.
		if *mix == "" || *mix == "hotset" || *mix == "insert" || *mix == "rw" {
			need := int(*rate*duration.Seconds()) + 1
			switch *mix {
			case "hotset":
				src = workload.HotSetSource(addrs, *hotKeys, need, *cost, *seed)
			case "insert":
				src = workload.InsertStormSource(addrs, need, *cost)
			case "rw":
				src = workload.RWMixSource(addrs, *hotKeys, need, *cost, *writeFrac, *seed)
			case "":
				src = workload.RepeatSource(addrs, *uri, need)
			}
		}
		d := &workload.OpenLoopDriver{
			Client:      client,
			Rate:        *rate,
			Duration:    *duration,
			Source:      src,
			MaxInFlight: *inflight,
			Seed:        *seed,
		}
		if *report > 0 {
			var prev, prevErr int64
			var prevAt time.Duration
			d.ReportEvery = *report
			d.OnProgress = func(elapsed time.Duration, completed, errors, shed int64) {
				secs := (elapsed - prevAt).Seconds()
				fmt.Printf("%8s  %8.1f req/s  errors +%d  shed %d\n",
					elapsed.Round(time.Second), float64(completed-prev)/secs, errors-prevErr, shed)
				prev, prevErr, prevAt = completed, errors, elapsed
			}
		}
		res := d.Run()
		fmt.Printf("offered: %d   completed: %d   errors: %d   shed: %d   elapsed: %v\n",
			res.Offered, res.Requests, res.Errors, res.Shed, res.Elapsed.Round(time.Millisecond))
		fmt.Printf("throughput: %.1f req/s (target %.1f)\n", res.Throughput(), *rate)
		if res.Latency.Count > 0 {
			fmt.Printf("latency: mean %v  p50 %v  p90 %v  p99 %v  p999 %v  max %v\n",
				res.Latency.Mean, res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max)
		}
		return
	}

	d := &workload.Driver{Client: client, Clients: *clients, Source: src}
	res := d.Run()

	fmt.Printf("requests: %d   errors: %d   elapsed: %v\n", res.Requests, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.1f req/s   %.1f KB/s\n", res.Throughput(), res.BytesPerSecond()/1024)
	if res.Latency.Count > 0 {
		fmt.Printf("latency: mean %v  p50 %v  p90 %v  p99 %v  p999 %v  max %v\n",
			res.Latency.Mean, res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max)
	}
}
