package repro

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment driver at quick size and a compressed time
// scale, and reports the experiment's headline quantity as a custom metric
// so `go test -bench` output can be compared against the paper's numbers
// directly. cmd/benchsuite runs the same drivers at full size with rendered
// tables.

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/timescale"
)

// latencyOpts is used by experiments whose signal is a latency difference
// (Tables 2-4, Figure 3): an expanded time scale keeps the simulated costs
// above host scheduling noise.
func latencyOpts() experiments.Options {
	return experiments.Options{
		Quick: true,
		Seed:  1998,
		Scale: timescale.Scale{PerSecond: 100 * time.Millisecond},
	}
}

// structuralOpts is used by experiments whose signal is structural (hit
// counts, order-of-magnitude ratios): a compressed scale keeps them fast.
func structuralOpts() experiments.Options {
	return experiments.Options{
		Quick: true,
		Seed:  1998,
		Scale: timescale.Scale{PerSecond: 2500 * time.Microsecond},
	}
}

// paperSeconds converts a measured duration to paper seconds at a scale.
func paperSeconds(o experiments.Options, d time.Duration) float64 {
	return o.Scale.PaperSeconds(d)
}

// BenchmarkTable1LogAnalysis regenerates Table 1: potential time saving by
// caching CGI results, on the calibrated synthetic ADL trace.
func BenchmarkTable1LogAnalysis(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(structuralOpts())
		saved = res.SavedPercentAt(1)
	}
	b.ReportMetric(saved, "saved%@1s")
}

// BenchmarkTable2FileFetch regenerates Table 2: WebStone file-mix response
// time for HTTPd, Enterprise, and Swala.
func BenchmarkTable2FileFetch(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(latencyOpts())
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.SpeedupOverHTTPd(len(res.Clients) - 1)
	}
	b.ReportMetric(speedup, "swala-vs-httpd-x")
}

// BenchmarkFigure3NullCGI regenerates Figure 3: null-CGI response time for
// the five configurations.
func BenchmarkFigure3NullCGI(b *testing.B) {
	var local, remote, exec float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure3(latencyOpts())
		if err != nil {
			b.Fatal(err)
		}
		local = paperSeconds(latencyOpts(), res.Mean(experiments.F3SwalaLocal))
		remote = paperSeconds(latencyOpts(), res.Mean(experiments.F3SwalaRemote))
		exec = paperSeconds(latencyOpts(), res.Mean(experiments.F3SwalaNoCa))
	}
	b.ReportMetric(local, "local-fetch-s")
	b.ReportMetric(remote, "remote-fetch-s")
	b.ReportMetric(exec, "cgi-exec-s")
}

// BenchmarkFigure4MultiNode regenerates Figure 4: multi-node response time
// with and without cooperative caching.
func BenchmarkFigure4MultiNode(b *testing.B) {
	var improvement, speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(structuralOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Nodes) - 1
		improvement = 100 * res.ImprovementAt(last)
		speedup = res.SpeedupAt(last)
	}
	b.ReportMetric(improvement, "cache-improvement-%")
	b.ReportMetric(speedup, "scaling-speedup-x")
}

// BenchmarkTable3InsertOverhead regenerates Table 3: insert + broadcast
// overhead on unique cacheable requests.
func BenchmarkTable3InsertOverhead(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(latencyOpts())
		if err != nil {
			b.Fatal(err)
		}
		rel = 100 * res.MaxRelativeIncrease()
	}
	b.ReportMetric(rel, "max-overhead-%")
}

// BenchmarkTable4DirectoryUpdates regenerates Table 4: replicated directory
// maintenance overhead under pseudo-server update streams.
func BenchmarkTable4DirectoryUpdates(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(latencyOpts())
		if err != nil {
			b.Fatal(err)
		}
		rel = 100 * res.MaxRelativeIncrease()
	}
	b.ReportMetric(rel, "max-overhead-%")
}

// BenchmarkTable5HitRatioLarge regenerates Table 5: hit ratios with
// per-node cache size 2000.
func BenchmarkTable5HitRatioLarge(b *testing.B) {
	var coop, standalone float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHitRatio(structuralOpts(), 2000)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Nodes) - 1
		coop = res.CoopPercentAt(last)
		standalone = res.StandAlonePercentAt(last)
	}
	b.ReportMetric(coop, "coop-%of-bound")
	b.ReportMetric(standalone, "standalone-%of-bound")
}

// BenchmarkTable6HitRatioSmall regenerates Table 6: hit ratios with
// per-node cache size 20.
func BenchmarkTable6HitRatioSmall(b *testing.B) {
	var coop, standalone float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHitRatio(structuralOpts(), 20)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Nodes) - 1
		coop = res.CoopPercentAt(last)
		standalone = res.StandAlonePercentAt(last)
	}
	b.ReportMetric(coop, "coop-%of-bound")
	b.ReportMetric(standalone, "standalone-%of-bound")
}
