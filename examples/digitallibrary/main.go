// Digital library: the scenario that motivated Swala. A four-node cluster
// serves an Alexandria-Digital-Library-like workload — expensive map/query
// CGI requests with heavy repetition — replayed from the calibrated
// synthetic trace. The example runs the same workload twice, with caching
// off and on, and reports the response-time improvement and hit statistics,
// a miniature of the paper's Figure 4 experiment.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/adltrace"
	"repro/internal/cacheability"
	"repro/internal/cgi"
	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/stats"
	"repro/internal/timescale"
	"repro/internal/workload"
)

const (
	nodes         = 4
	clientThreads = 8
)

func main() {
	scale := timescale.Scale{PerSecond: 5 * time.Millisecond} // 1 paper-s = 5 ms

	// A small trace with the ADL log's proportions: ~41% CGI, repetition
	// concentrated in hot queries.
	cfg := adltrace.Default()
	cfg.TotalRequests = 1000
	cfg.HotClasses = 50
	cfg.HotRepeats = 140
	trace := adltrace.Generate(cfg)

	var reqs []workload.TraceRequest
	for _, rec := range trace.CGIRequests() {
		reqs = append(reqs, workload.TraceRequest{URI: rec.URI})
	}
	fmt.Printf("Replaying %d dynamic requests (%d unique) on %d nodes, %d client threads\n",
		len(reqs), countUnique(reqs), nodes, clientThreads)

	noCacheMean := run(core.NoCache, scale, reqs)
	cacheMean := run(core.Cooperative, scale, reqs)

	fmt.Printf("\nmean response without caching: %8.3f paper-s\n", scale.PaperSeconds(noCacheMean))
	fmt.Printf("mean response with coop cache: %8.3f paper-s\n", scale.PaperSeconds(cacheMean))
	fmt.Printf("improvement: %.0f%%  (paper reports ~25%% on its workload)\n",
		100*(1-float64(cacheMean)/float64(noCacheMean)))
}

func run(mode core.Mode, scale timescale.Scale, reqs []workload.TraceRequest) time.Duration {
	pol := cacheability.CacheAll(time.Hour)
	servers := make([]*core.Server, nodes)
	addrs := make([]string, nodes)
	for i := range servers {
		s := core.New(core.Config{
			NodeID:       uint32(i + 1),
			Mode:         mode,
			Costs:        core.ScaledCosts(scale),
			Cacheability: pol,
		})
		// The ADL program: execution time carried by the cost=<paper-ms>
		// query parameter, like the trace generator emits.
		s.CGI().Register("/cgi-bin/adl", &cgi.Synthetic{
			OutputSize:   2 << 10,
			PerQueryTime: scale.D(0.001),
		})
		if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		servers[i] = s
		addrs[i] = s.HTTPAddr()
	}
	if mode == core.Cooperative {
		for i := range servers {
			for j := range servers {
				if i != j {
					if err := servers[i].ConnectPeer(uint32(j+1), servers[j].ClusterAddr()); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}

	client := httpclient.New(nil)
	defer client.Close()
	d := &workload.Driver{
		Client:  client,
		Clients: clientThreads,
		Source:  workload.SliceSource(addrs, reqs, clientThreads),
	}
	out := d.Run()
	if out.Errors > 0 {
		log.Fatalf("%d request errors", out.Errors)
	}

	var total stats.HitSnapshot
	for _, s := range servers {
		total = total.Add(s.Counters())
	}
	fmt.Printf("  mode=%-12v mean=%7.3f paper-s   %v\n",
		mode, scale.PaperSeconds(out.Latency.Mean), total)
	return out.Latency.Mean
}

func countUnique(reqs []workload.TraceRequest) int {
	seen := map[string]bool{}
	for _, r := range reqs {
		seen[r.URI] = true
	}
	return len(seen)
}
