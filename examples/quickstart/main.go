// Quickstart: start a two-node Swala cluster on loopback TCP, issue the same
// CGI request against both nodes, and watch the second node serve it from
// the first node's cache via a remote fetch.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cgi"
	"repro/internal/core"
	"repro/internal/httpclient"
)

func main() {
	// Two cooperative nodes. Ports are picked by the OS.
	nodes := make([]*core.Server, 2)
	for i := range nodes {
		s := core.New(core.Config{
			NodeID: uint32(i + 1),
			Mode:   core.Cooperative,
		})
		// A "map rendering" CGI that takes 300 ms of CPU.
		s.CGI().Register("/cgi-bin/map", &cgi.Synthetic{
			ServiceTime: 300 * time.Millisecond,
			OutputSize:  4 << 10,
		})
		if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		nodes[i] = s
	}
	// Full-mesh peering.
	if err := nodes[0].ConnectPeer(2, nodes[1].ClusterAddr()); err != nil {
		log.Fatal(err)
	}
	if err := nodes[1].ConnectPeer(1, nodes[0].ClusterAddr()); err != nil {
		log.Fatal(err)
	}

	client := httpclient.New(nil)
	defer client.Close()

	get := func(node int, uri string) {
		start := time.Now()
		resp, err := client.Get(nodes[node-1].HTTPAddr(), uri)
		if err != nil {
			log.Fatal(err)
		}
		src := resp.Header.Get("X-Swala-Cache")
		if src == "" {
			src = "executed"
		}
		fmt.Printf("node %d  %-32s %-8s %6.1f ms  (%d bytes)\n",
			node, uri, src, float64(time.Since(start).Microseconds())/1000, len(resp.Body))
	}

	const uri = "/cgi-bin/map?tile=34,118&zoom=6"
	fmt.Println("First request executes the CGI (slow):")
	get(1, uri)

	fmt.Println("\nSame request on the same node is a local cache hit (fast):")
	get(1, uri)

	// Give the insert broadcast a moment to reach node 2's directory.
	time.Sleep(50 * time.Millisecond)
	fmt.Println("\nSame request on the OTHER node is a remote cache fetch (fast):")
	get(2, uri)

	fmt.Println("\nNode 1 counters:", nodes[0].Counters())
	fmt.Println("Node 2 counters:", nodes[1].Counters())
}
