// Invalidation: stronger consistency than TTL expiry, using both extension
// mechanisms the paper describes as future work — explicit application-
// driven invalidation and source-file monitoring. A "database" file backs a
// query CGI; when the file changes, the cached results must go.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cgi"
	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/monitor"
)

func main() {
	dir, err := os.MkdirTemp("", "swala-invalidation")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbFile := filepath.Join(dir, "catalog.db")
	mustWrite(dbFile, "catalog v1")

	// Two cooperative nodes so the invalidation has to cross the cluster.
	nodes := make([]*core.Server, 2)
	for i := range nodes {
		s := core.New(core.Config{NodeID: uint32(i + 1), Mode: core.Cooperative})
		s.CGI().Register("/cgi-bin/query", &cgi.Synthetic{
			ServiceTime: 100 * time.Millisecond,
			OutputSize:  512,
		})
		if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		nodes[i] = s
	}
	if err := nodes[0].ConnectPeer(2, nodes[1].ClusterAddr()); err != nil {
		log.Fatal(err)
	}
	if err := nodes[1].ConnectPeer(1, nodes[0].ClusterAddr()); err != nil {
		log.Fatal(err)
	}

	// Node 1 watches the catalog file; a change invalidates all cached
	// query results, cluster-wide.
	mon := monitor.New(nodes[0].Invalidate, 50*time.Millisecond, nil)
	if err := mon.Add(monitor.Watch{Path: dbFile, Pattern: "GET /cgi-bin/query*"}); err != nil {
		log.Fatal(err)
	}
	mon.Start()
	defer mon.Stop()

	client := httpclient.New(nil)
	defer client.Close()
	get := func(node int, uri string) string {
		resp, err := client.Get(nodes[node-1].HTTPAddr(), uri)
		if err != nil {
			log.Fatal(err)
		}
		src := resp.Header.Get("X-Swala-Cache")
		if src == "" {
			src = "executed"
		}
		return src
	}

	const uri = "/cgi-bin/query?title=maps"
	fmt.Printf("1. populate both caches:        node1=%s", get(1, uri))
	time.Sleep(50 * time.Millisecond) // let the insert broadcast land
	fmt.Printf("  node2=%s\n", get(2, uri))
	fmt.Printf("2. repeat (served from cache):  node1=%s  node2=%s\n", get(1, uri), get(2, uri))

	fmt.Println("3. the catalog file changes ...")
	mustWrite(dbFile, "catalog v2 — a new map collection was ingested")
	bumpMtime(dbFile)
	waitFor(func() bool { return mon.Fired() > 0 })
	time.Sleep(100 * time.Millisecond) // let deletes propagate

	fmt.Printf("4. node1 re-executes and re-caches the fresh result: node1=%s\n", get(1, uri))
	fmt.Printf("   node2 cooperatively serves node1's FRESH result:  node2=%s\n", get(2, uri))

	fmt.Println("5. explicit admin invalidation (swalactl-style) clears the cluster:")
	nodes[1].Invalidate("GET /cgi-bin/query*")
	time.Sleep(100 * time.Millisecond) // let the invalidation reach node 1
	fmt.Printf("   next request executes again:  node2=%s\n", get(2, uri))
}

func mustWrite(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}

// bumpMtime makes the change unambiguous on coarse-mtime filesystems.
func bumpMtime(path string) {
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		log.Fatal(err)
	}
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("timed out")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
