// Replacement policies: compare the five cache-replacement policies Swala
// implements (LRU, FIFO, LFU, SIZE, GDS) on a skewed dynamic workload with a
// deliberately undersized cache — an ablation of the design choice Section 3
// motivates ("more advanced replacement methods ... keep the most important
// requests in terms of execution time, access frequency, ...").
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/cacheability"
	"repro/internal/cgi"
	"repro/internal/core"
	"repro/internal/httpclient"
	"repro/internal/replacement"
	"repro/internal/timescale"
	"repro/internal/workload"
)

func main() {
	scale := timescale.Scale{PerSecond: 2 * time.Millisecond}

	// Workload: 120 distinct queries, Zipf-ish popularity, execution time
	// correlated with query ID (popular queries are cheap, the long tail is
	// expensive) — the regime where cost-aware GDS shines.
	rng := rand.New(rand.NewSource(7))
	var reqs []workload.TraceRequest
	for i := 0; i < 1200; i++ {
		q := zipfPick(rng, 120)
		costMs := 100 + 40*q // paper-ms; unpopular queries cost more
		reqs = append(reqs, workload.TraceRequest{
			URI: fmt.Sprintf("/cgi-bin/adl?q=query%03d&cost=%d", q, costMs),
		})
	}

	fmt.Println("policy  hits  hit%   mean-response(paper-s)  evictions")
	for _, kind := range replacement.Kinds() {
		hits, ratio, mean, evictions := run(kind, scale, reqs)
		fmt.Printf("%-6s  %4d  %4.0f%%  %8.3f               %6d\n",
			kind, hits, 100*ratio, scale.PaperSeconds(mean), evictions)
	}
	fmt.Println("\nCache capacity is 24 entries for 120 distinct queries: the policy decides")
	fmt.Println("which results survive. GDS keeps the expensive long-tail results.")
}

func run(kind replacement.Kind, scale timescale.Scale, reqs []workload.TraceRequest) (int64, float64, time.Duration, int64) {
	s := core.New(core.Config{
		NodeID:        1,
		Mode:          core.StandAlone,
		Costs:         core.ScaledCosts(scale),
		CacheCapacity: 24,
		Policy:        kind,
		Cacheability:  cacheability.CacheAll(time.Hour),
	})
	s.CGI().Register("/cgi-bin/adl", &cgi.Synthetic{
		OutputSize:   1 << 10,
		PerQueryTime: scale.D(0.001),
	})
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	client := httpclient.New(nil)
	defer client.Close()
	d := &workload.Driver{
		Client:  client,
		Clients: 4,
		Source:  workload.SliceSource([]string{s.HTTPAddr()}, reqs, 4),
	}
	out := d.Run()
	if out.Errors > 0 {
		log.Fatalf("%s: %d request errors", kind, out.Errors)
	}
	snap := s.Counters()
	return snap.Hits(), snap.HitRatio(), out.Latency.Mean, snap.Evictions
}

// zipfPick returns a query ID in [0, n) with harmonic-series popularity.
func zipfPick(rng *rand.Rand, n int) int {
	// Inverse-CDF over 1/(k+1) weights.
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / float64(k+1)
	}
	x := rng.Float64() * total
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / float64(k+1)
		if x < acc {
			return k
		}
	}
	return n - 1
}
